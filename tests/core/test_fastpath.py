"""The comm fast path end to end: pooling, status caching, concurrency.

Two families of guarantees are pinned here. First, correctness of the
fast path itself: cache invalidation forces a re-probe after any
execution, breaker transitions drop fast-path state, concurrent
dispatch overlaps independent actions without changing outcomes.
Second, the off switch: with every knob off the engine must be
byte-identical to the pre-fastpath engine, which the checked-in obs
goldens pin on both runtime backends.
"""

import pytest

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    HealthPolicy,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)
from repro.errors import AortaError
from repro.actions.request import ActionRequest
from repro.devices.health import BreakerState
from repro.runtime import RealtimeRuntime, VirtualRuntime

from tests.core.conftest import LOSSLESS
from tests.obs.golden import (
    assert_golden,
    diff_dumps,
    dump_engine,
    render_diff,
)
from tests.obs.scenarios import continuous_outage_scenario, snapshot_scenario

FASTPATH_OFF = dict(connection_pool=False, status_cache=False,
                    concurrent_dispatch=False)
FASTPATH_ON = dict(connection_pool=True, status_cache=True)


def build_fast_lab(config, n_cameras=3):
    """Cameras covering one quiet mote; workload driven by hand."""
    env = Environment()
    engine = AortaEngine(env, config=config, links=dict(LOSSLESS))
    for i in range(n_cameras):
        engine.add_device(PanTiltZoomCamera(
            env, f"cam{i + 1}", Point(20.0 * i, 0.0),
            facing=0.0, view_half_angle=170.0, view_range=1000.0))
    engine.add_device(SensorMote(env, "mote1", Point(5, 3),
                                 noise_amplitude=0.0))
    return engine


def submit_photo(engine, candidates, request_id=None, x=10.0):
    operator = engine.dispatcher.operator_for(engine.actions.get("photo"))
    operator.submit(ActionRequest(
        action_name="photo",
        arguments={"target": Point(x, 5.0), "directory": "photos"},
        created_at=engine.env.now,
        candidates=candidates,
        **({"request_id": request_id} if request_id else {})))
    return operator


def drive(engine, until):
    reports = []

    def driver(env):
        result = yield from engine.dispatcher.dispatch_pending()
        reports.extend(result)

    engine.env.process(driver(engine.env))
    engine.env.run(until=until)
    return reports


class TestConfigValidation:
    def test_fastpath_property(self):
        assert not EngineConfig().comm_fastpath
        assert EngineConfig(connection_pool=True).comm_fastpath
        assert EngineConfig(status_cache=True).comm_fastpath
        assert EngineConfig(concurrent_dispatch=True).comm_fastpath

    def test_pool_knobs_validated(self):
        with pytest.raises(AortaError, match="pool_capacity"):
            EngineConfig(pool_capacity=0)
        with pytest.raises(AortaError, match="pool_idle_seconds"):
            EngineConfig(pool_idle_seconds=0.0)

    def test_cache_knobs_validated(self):
        with pytest.raises(AortaError, match="status_ttl_seconds"):
            EngineConfig(status_ttl_seconds=-1.0)
        with pytest.raises(AortaError, match="camera"):
            EngineConfig(status_ttls={"camera": 0.0})

    def test_engine_builds_fastpath_only_when_asked(self):
        plain = build_fast_lab(EngineConfig())
        assert plain.pool is None and plain.status_cache is None
        assert plain.comm.transport.pool is None
        fast = build_fast_lab(EngineConfig(**FASTPATH_ON))
        assert fast.pool is not None and fast.status_cache is not None
        assert fast.comm.transport.pool is fast.pool


class TestStatusCacheIntegration:
    def test_fresh_cache_skips_probe_exchanges(self):
        engine = build_fast_lab(EngineConfig(status_cache=True,
                                             status_ttls={"camera": 60.0}))
        candidates = ("cam1", "cam2", "cam3")
        submit_photo(engine, candidates, x=10.0)
        drive(engine, until=20.0)
        first_round = engine.comm.prober.probes_sent
        assert first_round == 3          # cold cache probes everyone
        # Second batch: executed device was invalidated, the two idle
        # candidates answer from cache.
        submit_photo(engine, candidates, x=11.0)
        drive(engine, until=40.0)
        assert engine.comm.prober.probes_sent == first_round + 1
        assert engine.status_cache.hits == 2

    def test_execution_invalidates_so_next_batch_reprobes(self):
        """The correctness core: a served device's cached status is the
        pre-execution snapshot and must not cost the next batch."""
        engine = build_fast_lab(EngineConfig(status_cache=True,
                                             status_ttls={"camera": 60.0}),
                                n_cameras=1)
        submit_photo(engine, ("cam1",), x=10.0)
        drive(engine, until=20.0)
        assert engine.comm.prober.probes_sent == 1
        assert engine.status_cache.invalidations == 1
        before = engine.status_cache.hits
        submit_photo(engine, ("cam1",), x=11.0)
        drive(engine, until=40.0)
        # Re-probed, not served from cache.
        assert engine.comm.prober.probes_sent == 2
        assert engine.status_cache.hits == before

    def test_cached_and_probed_batches_service_identically(self):
        """A warm cache changes how statuses are fetched, never which
        requests get serviced."""
        def run(config):
            engine = build_fast_lab(config)
            candidates = ("cam1", "cam2", "cam3")
            for round_no in range(4):
                submit_photo(engine, candidates,
                             request_id=f"fp{round_no}",
                             x=10.0 + round_no)
                drive(engine, until=20.0 * (round_no + 1))
            return engine

        slow = run(EngineConfig(**FASTPATH_OFF))
        fast = run(EngineConfig(status_cache=True, connection_pool=True,
                                status_ttls={"camera": 120.0}))
        serviced = lambda e: sorted(
            r.request_id for r in e.completed_requests
            if r.state.value == "serviced")
        assert serviced(slow) == serviced(fast)
        assert fast.comm.prober.probes_sent \
            < slow.comm.prober.probes_sent
        assert fast.comm.transport.connects_attempted \
            < slow.comm.transport.connects_attempted

    def test_probe_failure_invalidates_cache(self):
        engine = build_fast_lab(EngineConfig(status_cache=True,
                                             status_ttls={"camera": 60.0}),
                                n_cameras=2)
        submit_photo(engine, ("cam1", "cam2"), x=10.0)
        drive(engine, until=20.0)
        assert len(engine.status_cache) >= 1
        engine.comm.registry.get("cam1").go_offline()
        engine.status_cache.clear()      # force the next batch to probe
        submit_photo(engine, ("cam1", "cam2"), x=11.0)
        drive(engine, until=60.0)
        # The dead camera's probe failed; nothing cached for it.
        assert engine.status_cache.lookup(
            engine.comm.registry.get("cam1")) is None


class TestPoolIntegration:
    def test_pool_reuses_channels_across_batches(self):
        engine = build_fast_lab(EngineConfig(connection_pool=True))
        candidates = ("cam1", "cam2", "cam3")
        for round_no in range(3):
            submit_photo(engine, candidates, x=10.0 + round_no)
            drive(engine, until=20.0 * (round_no + 1))
        assert engine.pool.hits > 0
        # Handshakes happen once per device, not once per exchange.
        assert engine.comm.transport.connects_attempted \
            < engine.pool.hits + engine.pool.misses

    def test_breaker_transition_drops_pool_and_cache_state(self):
        engine = build_fast_lab(EngineConfig(
            connection_pool=True, status_cache=True,
            health=HealthPolicy(failure_threshold=1,
                                quarantine_seconds=30.0)))
        cam1 = engine.comm.registry.get("cam1")
        engine.status_cache.store(cam1, {"pan": 0.0})
        assert engine.status_cache.lookup(cam1) is not None
        engine.health.record_failure("cam1", reason="test")
        assert engine.health.state_of("cam1") is BreakerState.OPEN
        assert engine.status_cache.lookup(cam1) is None
        assert engine.pool.invalidations + engine.status_cache.invalidations \
            >= 1


class TestConcurrentDispatch:
    def _two_action_engine(self, config):
        engine = build_fast_lab(config, n_cameras=2)
        photo = engine.dispatcher.operator_for(engine.actions.get("photo"))
        beep = engine.dispatcher.operator_for(engine.actions.get("beep"))
        photo.submit(ActionRequest(
            action_name="photo",
            arguments={"target": Point(10.0, 5.0), "directory": "photos"},
            created_at=0.0, candidates=("cam1",), request_id="cp1"))
        beep.submit(ActionRequest(
            action_name="beep", arguments={},
            created_at=0.0, candidates=("mote1",), request_id="cb1"))
        return engine

    def test_concurrent_batches_overlap(self):
        serial = self._two_action_engine(EngineConfig())
        serial_reports = drive(serial, until=60.0)
        overlapped = self._two_action_engine(
            EngineConfig(concurrent_dispatch=True))
        concurrent_reports = drive(overlapped, until=60.0)

        assert len(serial_reports) == len(concurrent_reports) == 2
        # Serial: the second batch starts after the first finishes.
        assert serial_reports[1].batch_started_at \
            >= serial_reports[0].batch_finished_at
        # Concurrent: both start at the same instant.
        starts = {r.batch_started_at for r in concurrent_reports}
        assert len(starts) == 1
        # And the whole drain finishes sooner.
        serial_makespan = max(r.batch_finished_at for r in serial_reports)
        concurrent_makespan = max(r.batch_finished_at
                                  for r in concurrent_reports)
        assert concurrent_makespan < serial_makespan

    def test_concurrent_dispatch_services_the_same_requests(self):
        outcomes = {}
        for label, config in (("serial", EngineConfig()),
                              ("concurrent",
                               EngineConfig(concurrent_dispatch=True))):
            engine = self._two_action_engine(config)
            drive(engine, until=60.0)
            outcomes[label] = sorted(
                r.request_id for r in engine.completed_requests
                if r.state.value == "serviced")
        assert outcomes["serial"] == outcomes["concurrent"]

    def test_dispatch_pending_iterates_a_snapshot(self):
        """Operators created while a batch dispatches (failover does
        this lazily) must not blow up the drain loop."""
        engine = build_fast_lab(EngineConfig(concurrent_dispatch=True),
                                n_cameras=1)
        submit_photo(engine, ("cam1",), request_id="snap1")
        dispatcher = engine.dispatcher
        original = dispatcher.dispatch_batch

        def mutating_dispatch(action, batch):
            # Registering a new operator mutates dispatcher._operators
            # mid-drain; a dict-iteration would raise RuntimeError.
            dispatcher.operator_for(engine.actions.get("beep"))
            return original(action, batch)

        dispatcher.dispatch_batch = mutating_dispatch
        reports = drive(engine, until=60.0)
        assert len(reports) == 1
        assert "beep" in dispatcher._operators


class TestFastpathOffIdentity:
    """All knobs off must be byte-identical to the pre-fastpath engine,
    pinned by the checked-in goldens on both runtime backends."""

    def test_snapshot_golden_with_explicit_fastpath_off(self):
        engine = snapshot_scenario(observability=True, **FASTPATH_OFF)
        assert_golden("snapshot_obs", dump_engine(engine))

    def test_continuous_outage_golden_with_explicit_fastpath_off(self):
        engine = continuous_outage_scenario(observability=True,
                                            **FASTPATH_OFF)
        assert_golden("continuous_outage_obs", dump_engine(engine))

    @pytest.mark.parametrize("backend", ["virtual", "realtime"])
    def test_both_backends_match_the_golden_with_fastpath_off(
            self, backend):
        env = (VirtualRuntime() if backend == "virtual"
               else RealtimeRuntime(time_scale=0))
        engine = snapshot_scenario(observability=True, env=env,
                                   **FASTPATH_OFF)
        assert_golden("snapshot_obs", dump_engine(engine))

    def test_fastpath_on_differs_only_in_comm_traffic(self):
        """Sanity: the fast path changes probe/connect traffic and adds
        its own statistics keys, but the serviced set is untouched."""
        off = dump_engine(snapshot_scenario(observability=None,
                                            **FASTPATH_OFF))
        on = dump_engine(snapshot_scenario(observability=None,
                                           **FASTPATH_ON))
        assert on["serviced"] == off["serviced"]
        assert on["statistics"]["requests_serviced"] \
            == off["statistics"]["requests_serviced"]
        assert "pool_hits" in on["statistics"]
        assert "pool_hits" not in off["statistics"]


# ----------------------------------------------------------------------
# Property test: the serviced set is invariant under the fast path.
# ----------------------------------------------------------------------
try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dep
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestServicedSetInvariance:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rounds=st.integers(min_value=1, max_value=4),
           n_cameras=st.integers(min_value=1, max_value=4),
           ttl=st.floats(min_value=0.5, max_value=120.0))
    def test_fastpath_never_changes_which_requests_are_serviced(
            self, rounds, n_cameras, ttl):
        def run(config):
            engine = build_fast_lab(config, n_cameras=n_cameras)
            candidates = tuple(f"cam{i + 1}" for i in range(n_cameras))
            for round_no in range(rounds):
                submit_photo(engine, candidates,
                             request_id=f"pr{round_no}",
                             x=5.0 + 3.0 * round_no)
                drive(engine, until=30.0 * (round_no + 1))
            return sorted(r.request_id
                          for r in engine.completed_requests
                          if r.state.value == "serviced")

        off = run(EngineConfig(**FASTPATH_OFF))
        on = run(EngineConfig(connection_pool=True, status_cache=True,
                              status_ttl_seconds=ttl,
                              status_ttls={"camera": ttl}))
        assert off == on
