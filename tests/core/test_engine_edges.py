"""Engine edge cases: DDL errors, pause/resume, clock misuse."""

import pytest

from repro.errors import ParseError, QueryError, SimulationError
from repro import SensorStimulus
from repro.sim.clock import VirtualClock
from tests.core.conftest import FIGURE_1


def test_malformed_sql_raises_parse_error(engine):
    with pytest.raises(ParseError):
        engine.execute("CREATE SOMETHING WEIRD")


def test_sql_with_position_info(engine):
    with pytest.raises(ParseError, match="line"):
        engine.execute("SELECT\nFROM sensor s")


def test_enable_disable_query(engine):
    engine.execute(FIGURE_1)
    engine.disable_query("snapshot")
    assert not engine.continuous.queries["snapshot"].enabled
    engine.enable_query("snapshot")
    assert engine.continuous.queries["snapshot"].enabled


def test_toggle_unknown_query(engine):
    with pytest.raises(QueryError, match="no registered query"):
        engine.disable_query("ghost")


def test_disable_actually_pauses_detection(engine):
    engine.execute(FIGURE_1)
    engine.disable_query("snapshot")
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=20.0)
    assert engine.completed_requests == []


def test_clock_rejects_backwards_motion():
    clock = VirtualClock(5.0)
    with pytest.raises(SimulationError, match="backwards"):
        clock.advance_to(4.0)
    clock.advance_to(5.0)  # same time is fine
    assert clock.now == 5.0


def test_engine_run_returns_final_time(engine):
    assert engine.run(until=12.5) == 12.5
    assert engine.env.now == 12.5


def test_two_engines_are_isolated():
    """Separate environments never share state."""
    from tests.core.conftest import build_lab
    first = build_lab()
    second = build_lab()
    first.execute(FIGURE_1)
    assert "snapshot" in first.continuous.queries
    assert "snapshot" not in second.continuous.queries
    first.run(until=5.0)
    assert second.env.now == 0.0
