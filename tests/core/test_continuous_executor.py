"""Continuous-executor details: registration rules, enable flag, counters."""

import pytest

from repro.errors import PlanError, RegistrationError
from repro import SensorStimulus
from tests.core.conftest import FIGURE_1


def test_duplicate_query_name_rejected(engine):
    engine.execute(FIGURE_1)
    with pytest.raises(RegistrationError, match="already registered"):
        engine.execute(FIGURE_1)


def test_candidate_predicate_on_sensory_attribute_rejected(engine):
    """Device status comes from probing, not candidate predicates."""
    with pytest.raises(PlanError, match="sensory attribute"):
        engine.execute('''CREATE AQ bad AS
            SELECT photo(c.ip, s.loc, "p")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND c.zoom < 5''')


def test_candidate_predicate_on_static_attribute_allowed(engine):
    registered = engine.execute('''CREATE AQ ok AS
        SELECT photo(c.ip, s.loc, "p")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND c.ip <> "10.0.0.9"''')
    assert registered.name == "ok"


def test_candidate_predicate_loc_pseudo_column_allowed(engine):
    registered = engine.execute('''CREATE AQ near AS
        SELECT photo(c.ip, s.loc, "p")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND distance(c.loc, s.loc) < 30''')
    assert registered.name == "near"


def test_disabled_query_detects_nothing(engine):
    registered = engine.execute(FIGURE_1)
    registered.enabled = False
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=20.0)
    assert registered.events_detected == 0
    assert engine.completed_requests == []


def test_reenabled_query_resumes(engine):
    registered = engine.execute(FIGURE_1)
    registered.enabled = False
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    mote.inject(SensorStimulus("accel_x", start=30.0, duration=2.0,
                               magnitude=900.0))

    def reenable(env):
        yield env.timeout(20.0)
        registered.enabled = True

    engine.env.process(reenable(engine.env))
    engine.start()
    engine.run(until=60.0)
    assert registered.events_detected == 1


def test_query_counters(engine):
    registered = engine.execute(FIGURE_1)
    mote = engine.comm.registry.get("mote2")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=20.0)
    assert registered.events_detected == 1
    assert registered.requests_emitted == 1
    assert registered.uncovered_events == 0
    assert engine.continuous.polls > 5


def test_dropped_query_pending_requests_discarded(engine):
    """DROP AQ while a request waits in the shared operator removes it."""
    engine.execute(FIGURE_1)
    operator = engine.dispatcher.operator_for(engine.actions.get("photo"))
    from repro.actions.request import ActionRequest
    operator.submit(ActionRequest(
        action_name="photo",
        arguments={"target": None, "directory": "p"},
        query_id="snapshot", candidates=("cam1",)))
    assert operator.pending_count == 1
    engine.execute("DROP AQ snapshot")
    assert operator.pending_count == 0
