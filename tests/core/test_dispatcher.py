"""Unit tests for the dispatcher: batching, probing, scheduler config."""

import pytest

from repro.errors import AortaError
from repro import EngineConfig, Point, SensorStimulus
from repro.actions.request import ActionRequest, RequestState
from repro.core.config import SCHEDULER_NAMES
from repro.core.dispatcher import SCHEDULER_FACTORIES
from repro.geometry import Point
from tests.core.conftest import build_lab


def make_request(engine, target, query_id=""):
    return ActionRequest(
        action_name="photo",
        arguments={"target": target, "directory": "photos"},
        query_id=query_id,
        created_at=engine.env.now,
        candidates=("cam1", "cam2"),
    )


def dispatch(engine, requests):
    action = engine.actions.get("photo")
    reports = []

    def proc(env):
        report = yield from engine.dispatcher.dispatch_batch(
            action, requests)
        reports.append(report)

    engine.env.process(proc(engine.env))
    engine.env.run()
    return reports[0]


def test_every_scheduler_name_has_factory():
    assert set(SCHEDULER_FACTORIES) == set(SCHEDULER_NAMES)


def test_dispatch_batch_services_requests(engine):
    requests = [make_request(engine, Point(4, 3)),
                make_request(engine, Point(16, 3))]
    report = dispatch(engine, requests)
    assert report.batch_size == 2
    assert report.serviced == 2
    assert report.failed == 0
    assert report.makespan_seconds > 0
    assert all(r.state is RequestState.SERVICED for r in requests)


def test_dispatch_spreads_load_across_cameras(engine):
    """Two far-apart targets should go to the two different cameras."""
    requests = [make_request(engine, Point(2, 3)),
                make_request(engine, Point(18, 3))]
    dispatch(engine, requests)
    assert {r.assigned_device for r in requests} == {"cam1", "cam2"}


def test_dispatch_excludes_probe_failures(engine):
    engine.comm.registry.get("cam1").go_offline()
    request = make_request(engine, Point(4, 3))
    report = dispatch(engine, [request])
    assert request.assigned_device == "cam2"
    assert report.serviced == 1


def test_dispatch_all_candidates_dead(engine):
    engine.comm.registry.get("cam1").go_offline()
    engine.comm.registry.get("cam2").go_offline()
    request = make_request(engine, Point(4, 3))
    report = dispatch(engine, [request])
    assert report.unschedulable == 1
    assert request.state is RequestState.FAILED


def test_no_probing_assigns_blind():
    engine = build_lab(config=EngineConfig(probing=False))
    engine.comm.registry.get("cam1").go_offline()
    engine.comm.registry.get("cam2").go_offline()
    request = make_request(engine, Point(4, 3))
    report = dispatch(engine, [request])
    # Without probing the dead camera is only discovered at execution.
    assert report.scheduled == 1
    assert request.state is RequestState.FAILED
    assert "offline" in request.failure_reason


def test_scheduler_configured_by_name():
    engine = build_lab(config=EngineConfig(scheduler="LERFA+SRFE"))
    assert engine.dispatcher.scheduler.name == "LERFA+SRFE"


def test_unknown_scheduler_rejected():
    with pytest.raises(AortaError, match="unknown scheduler"):
        EngineConfig(scheduler="QUANTUM")


def test_config_validation():
    with pytest.raises(AortaError, match="poll_interval"):
        EngineConfig(poll_interval=0)
    with pytest.raises(AortaError, match="batch_window"):
        EngineConfig(batch_window=-1)


def test_synchronization_property():
    assert EngineConfig(locking=True, probing=True).synchronization
    assert not EngineConfig(locking=False, probing=True).synchronization
    assert not EngineConfig(locking=True, probing=False).synchronization


def test_batch_window_groups_requests(engine):
    """Requests submitted within the window dispatch as one batch."""
    engine.execute('''CREATE AQ q1 AS
        SELECT photo(c.ip, s.loc, "p1") FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    engine.execute('''CREATE AQ q2 AS
        SELECT photo(c.ip, s.loc, "p2") FROM sensor s, camera c
        WHERE s.accel_x > 400 AND coverage(c.id, s.loc)''')
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=2.0,
                               magnitude=900.0))
    engine.start()
    engine.run(until=20.0)
    assert len(engine.dispatcher.reports) == 1
    assert engine.dispatcher.reports[0].batch_size == 2


def test_dispatcher_start_twice_rejected(engine):
    engine.dispatcher.start()
    with pytest.raises(AortaError, match="already started"):
        engine.dispatcher.start()


def test_unlocked_mode_runs_concurrently():
    engine = build_lab(config=EngineConfig(locking=False, probing=True))
    requests = [make_request(engine, Point(4, 3)),
                make_request(engine, Point(16, 3)),
                make_request(engine, Point(10, 3))]
    dispatch(engine, requests)
    assert engine.locks.acquisitions == 0  # no locking happened
