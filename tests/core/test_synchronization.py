"""Integration tests of the Section 6.2 synchronization study.

Ten photo queries over two cameras, one event per query per virtual
minute. Without locking, concurrent photo() executions interfere (blur,
wrong positions, refused connections); with the locking mechanism the
interference disappears.
"""

import pytest

from repro import EngineConfig, Point, SensorStimulus
from repro.actions.request import RequestState
from repro.devices.camera import Photo
from tests.core.conftest import build_lab


def monitoring_queries(engine, n_queries):
    """Register the paper's workload: query i photographs mote i."""
    for i in range(1, n_queries + 1):
        engine.execute(f'''CREATE AQ photo_mote{i} AS
            SELECT photo(c.ip, s.loc, "photos/q{i}")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND s.id = "mote{i}"
              AND coverage(c.id, s.loc)''')


def fire_events_every_minute(engine, n_queries, minutes):
    for minute in range(minutes):
        for i in range(1, n_queries + 1):
            mote = engine.comm.registry.get(f"mote{i}")
            mote.inject(SensorStimulus(
                "accel_x", start=60.0 * minute + 1.0, duration=3.0,
                magnitude=900.0))


def run_study(locking: bool, n_queries=6, minutes=3):
    config = EngineConfig(locking=locking, probing=True,
                          scheduler="SRFAE", poll_interval=1.0)
    engine = build_lab(config=config, n_motes=n_queries)
    monitoring_queries(engine, n_queries)
    fire_events_every_minute(engine, n_queries, minutes)
    engine.start()
    engine.run(until=60.0 * minutes + 30.0)
    return engine


def failure_fraction(engine):
    """The paper's failure notion: failed outright, blurred, or wrong
    position."""
    requests = engine.completed_requests
    assert requests, "study produced no requests"
    failures = 0
    for request in requests:
        if request.state is RequestState.FAILED:
            failures += 1
        elif isinstance(request.result, Photo) and not request.result.ok:
            failures += 1
    return failures / len(requests)


@pytest.mark.slow
def test_locking_eliminates_interference():
    without = failure_fraction(run_study(locking=False))
    with_locking = failure_fraction(run_study(locking=True))
    # Paper: >50% failures without synchronization, ~10% with.
    assert without > 0.3
    assert with_locking < 0.15
    assert with_locking < without


def test_all_events_produce_requests_with_locking():
    engine = run_study(locking=True, n_queries=4, minutes=2)
    # 4 queries x 2 minutes of events.
    assert len(engine.completed_requests) == 8


def test_locked_execution_serializes_on_each_camera():
    engine = run_study(locking=True, n_queries=4, minutes=1)
    # Each camera serviced its queue one photo at a time: no photo may
    # overlap another on the same camera.
    for camera_id in ("cam1", "cam2"):
        camera = engine.comm.registry.get(camera_id)
        photos = sorted(camera.photo_log, key=lambda p: p.taken_at)
        for earlier, later in zip(photos, photos[1:]):
            # store (0.1) happens after capture; captures are >= fixed
            # photo time apart under serialization.
            assert later.taken_at - earlier.taken_at >= 0.25
    assert all(p.ok for c in ("cam1", "cam2")
               for p in engine.comm.registry.get(c).photo_log)


def test_unlocked_execution_produces_interference_artifacts():
    engine = run_study(locking=False, n_queries=6, minutes=1)
    photos = []
    for camera_id in ("cam1", "cam2"):
        photos.extend(engine.comm.registry.get(camera_id).photo_log)
    assert any(not p.ok for p in photos)


def test_lock_contention_counted():
    engine = run_study(locking=True, n_queries=4, minutes=1)
    assert engine.locks.acquisitions >= 4
