"""Snapshot SELECT coverage: arithmetic, literals, empty results."""

import pytest

from repro import SensorStimulus


def test_arithmetic_in_projection(engine):
    rows = engine.run_select(
        'SELECT s.id, s.loc_x * 2 + 1 FROM sensor s WHERE s.id = "mote1"')
    assert rows == [("mote1", 4.0 * 2 + 1)]


def test_arithmetic_in_where(engine):
    rows = engine.run_select(
        "SELECT s.id FROM sensor s WHERE s.loc_x * s.loc_x > 50")
    # Motes at x = 4, 8, 12: squares 16, 64, 144.
    assert sorted(rows) == [("mote2",), ("mote3",)]


def test_literal_projection(engine):
    rows = engine.run_select('SELECT "lab", 42 FROM phone p')
    assert rows == [("lab", 42)]


def test_empty_result_set(engine):
    rows = engine.run_select(
        "SELECT s.id FROM sensor s WHERE s.accel_x > 99999")
    assert rows == []


def test_where_combining_sensory_and_static(engine):
    mote = engine.comm.registry.get("mote2")
    mote.inject(SensorStimulus("accel_x", start=0.0, duration=1e6,
                               magnitude=700.0))
    rows = engine.run_select(
        "SELECT s.id FROM sensor s "
        "WHERE s.accel_x > 500 AND s.loc_x < 10")
    assert rows == [("mote2",)]


def test_three_way_join(engine):
    rows = engine.run_select(
        "SELECT s.id, c.id, p.number FROM sensor s, camera c, phone p "
        'WHERE s.id = "mote1" AND c.id = "cam1"')
    assert rows == [("mote1", "cam1", "+85290000000")]


def test_boolean_column_in_where(engine):
    rows = engine.run_select(
        "SELECT p.number FROM phone p WHERE p.mms_support")
    assert rows == [("+85290000000",)]
