"""The scheduler fast path end to end: vectorize + incremental knobs.

``vectorize=True`` must be invisible in outcomes: the engine's full
event trace is byte-identical to the scalar engine, for every
algorithm. ``incremental=True`` may legitimately place warm batches
differently (the splice is an approximation, not an identity), so it is
pinned on outcomes — every request serviced, dirty signals flowing,
statistics keys appearing only when the knob is on.
"""

import pytest

from repro import EngineConfig
from repro.scheduling import IncrementalScheduler
from repro.scheduling.vector_cost import HAVE_NUMPY

from tests.core.test_fastpath import build_fast_lab, drive, submit_photo

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")


def run_rounds(config, rounds=3, per_round=6):
    """Drive several recurring photo batches; returns (engine, trace)."""
    engine = build_fast_lab(config, n_cameras=4)
    candidates = ("cam1", "cam2", "cam3", "cam4")
    n = 0
    for round_index in range(rounds):
        for j in range(per_round):
            n += 1
            submit_photo(engine, candidates, request_id=f"r{n}",
                         x=10.0 + 3.0 * j + 1.5 * round_index)
        drive(engine, until=300.0 * (round_index + 1))
    trace = [(record.at, record.kind, dict(record.fields))
             for record in engine.dispatcher.tracer]
    return engine, trace


class TestVectorizeKnob:
    def test_defaults_off(self):
        config = EngineConfig()
        assert config.vectorize is False and config.incremental is False

    @needs_numpy
    @pytest.mark.parametrize("scheduler",
                             ["SRFAE", "LERFA+SRFE", "LS", "RANDOM"])
    def test_trace_byte_identical_to_scalar(self, scheduler):
        _, scalar = run_rounds(EngineConfig(scheduler=scheduler))
        _, vector = run_rounds(EngineConfig(scheduler=scheduler,
                                            vectorize=True))
        assert vector == scalar

    @needs_numpy
    def test_dispatcher_scheduler_carries_the_flag(self):
        engine = build_fast_lab(EngineConfig(vectorize=True))
        assert engine.dispatcher.scheduler.vectorize is True


class TestIncrementalKnob:
    def test_every_request_serviced_and_warm_runs_happen(self):
        engine, _ = run_rounds(EngineConfig(incremental=True), rounds=4)
        assert engine.dispatcher.serviced_total == 24
        assert engine.dispatcher.failed_total == 0
        stats = engine.statistics()
        assert stats["incremental_batches"] == 4
        # Recurring batches after the first are warm (spliced or
        # re-placed against the previous placement), not full runs.
        assert stats["incremental_full_runs"] == 1
        assert stats["incremental_signaled_devices"] > 0

    def test_statistics_keys_only_when_on(self):
        engine, _ = run_rounds(EngineConfig())
        assert not any(key.startswith("incremental_")
                       for key in engine.statistics())

    def test_per_action_scheduler_is_incremental(self):
        engine, _ = run_rounds(EngineConfig(incremental=True), rounds=1)
        state = engine.dispatcher._incremental["photo"]
        assert isinstance(state.scheduler, IncrementalScheduler)
        assert state.cache.inner is state.adapter
        assert state.scheduler.inner is engine.dispatcher.scheduler

    def test_status_cache_invalidations_feed_the_dirty_set(self):
        engine, _ = run_rounds(EngineConfig(incremental=True,
                                            status_cache=True), rounds=2)
        stats = engine.statistics()
        # Executions invalidate the status cache, whose listener marks
        # the device dirty (on top of the dispatcher's own marking).
        assert stats["status_cache_invalidations"] > 0
        assert stats["incremental_signaled_devices"] > 0
        assert engine.dispatcher.serviced_total == 12

    @needs_numpy
    def test_composes_with_vectorize(self):
        engine, _ = run_rounds(EngineConfig(incremental=True,
                                            vectorize=True), rounds=3)
        assert engine.dispatcher.serviced_total == 18
        assert engine.dispatcher.failed_total == 0

    def test_outcomes_match_the_default_path(self):
        plain, _ = run_rounds(EngineConfig(), rounds=3)
        warm, _ = run_rounds(EngineConfig(incremental=True), rounds=3)
        plain_reports = [(r.action_name, r.batch_size, r.serviced,
                          r.failed) for r in plain.dispatcher.reports]
        warm_reports = [(r.action_name, r.batch_size, r.serviced,
                         r.failed) for r in warm.dispatcher.reports]
        assert warm_reports == plain_reports
