"""Unit tests for named, reproducible random streams."""

from repro.sim import RandomStreams
from repro.sim.rng import derive_seed


def test_same_name_same_stream_object():
    streams = RandomStreams(42)
    assert streams.stream("workload") is streams.stream("workload")


def test_streams_are_deterministic_across_instances():
    a = RandomStreams(42).stream("workload")
    b = RandomStreams(42).stream("workload")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    streams = RandomStreams(42)
    a = streams.stream("workload")
    b = streams.stream("noise")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_master_seeds_differ():
    a = RandomStreams(1).stream("workload")
    b = RandomStreams(2).stream("workload")
    assert a.random() != b.random()


def test_stream_isolation():
    """Drawing from one stream never perturbs another."""
    reference = RandomStreams(7)
    expected = [reference.stream("b").random() for _ in range(3)]

    perturbed = RandomStreams(7)
    for _ in range(100):
        perturbed.stream("a").random()  # heavy use of an unrelated stream
    actual = [perturbed.stream("b").random() for _ in range(3)]
    assert actual == expected


def test_fork_independence():
    parent = RandomStreams(7)
    child = parent.fork("experiment1")
    assert child.master_seed != parent.master_seed
    assert (child.stream("x").random()
            != parent.stream("x").random())


def test_derive_seed_stable():
    # Stable across runs/platforms (SHA-256-based, not hash()-based).
    assert derive_seed(42, "workload") == derive_seed(42, "workload")
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_component_seed_routes_through_derive_seed():
    from repro.sim.rng import component_seed
    assert component_seed(42, "dispatcher:retry-jitter") == \
        derive_seed(42, "dispatcher:retry-jitter")
    assert component_seed(42, "comm:probe") == derive_seed(42, "comm:probe")


def test_component_seed_pins_legacy_root_streams():
    # The transport consumed the raw master seed before unification;
    # its stream is pinned so recorded goldens stay byte-identical.
    from repro.sim.rng import LEGACY_ROOT_STREAMS, component_seed
    assert LEGACY_ROOT_STREAMS == frozenset({"comm:transport"})
    for seed in (0, 7, 123456):
        assert component_seed(seed, "comm:transport") == seed
