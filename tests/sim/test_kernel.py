"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(start=5.0)
    assert env.now == 5.0


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        Environment(start=-1.0)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    end = env.run()
    assert end == pytest.approx(2.5)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-0.1)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(1.0)
        times.append(env.now)
        yield env.timeout(2.0)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [pytest.approx(1.0), pytest.approx(3.0)]


def test_two_processes_interleave():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc(env, "slow", 3.0))
    env.process(proc(env, "fast", 1.0))
    env.run()
    assert order == [("fast", 1.0), ("slow", 3.0)]


def test_same_time_events_are_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("a", "b", "c"):
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    end = env.run(until=4.0)
    assert end == 4.0
    assert env.pending_events == 1


def test_run_until_past_raises():
    env = Environment(start=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_process_returns_value_via_yield():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append(value)

    env.process(parent(env))
    env.run()
    assert results == [42]


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="ping")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["ping"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env):
        value = yield gate
        seen.append((env.now, value))

    def opener(env):
        yield env.timeout(2.0)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert seen == [(2.0, "open")]


def test_event_trigger_twice_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_interrupt_raises_inside_process():
    env = Environment()
    outcomes = []

    def victim(env):
        try:
            yield env.timeout(10.0)
            outcomes.append("finished")
        except Interrupt as intr:
            outcomes.append(("interrupted", env.now, intr.cause))

    def attacker(env, proc):
        yield env.timeout(3.0)
        proc.interrupt("redirect")

    proc = env.process(victim(env))
    env.process(attacker(env, proc))
    env.run()
    assert outcomes == [("interrupted", 3.0, "redirect")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yield_non_event_rejected():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_waiting_on_already_triggered_event():
    env = Environment()
    gate = env.event()
    gate.succeed("early")
    seen = []

    def waiter(env):
        value = yield gate
        seen.append(value)

    env.process(waiter(env))
    env.run()
    assert seen == ["early"]


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


# ----------------------------------------------------------------------
# Event budgets (runaway-process watchdog)
# ----------------------------------------------------------------------
def test_max_events_budget_stops_a_runaway_process():
    env = Environment()

    def runaway(env):
        while True:  # never quiesces: each timeout schedules another
            yield env.timeout(1.0)

    env.process(runaway(env))
    with pytest.raises(SimulationError) as excinfo:
        env.run(max_events=50)
    message = str(excinfo.value)
    assert "event budget exhausted" in message
    assert "processed 50 events" in message
    assert "pending" in message and "next:" in message


def test_max_events_budget_reports_the_current_time():
    env = Environment()

    def runaway(env):
        while True:
            yield env.timeout(2.0)

    env.process(runaway(env))
    with pytest.raises(SimulationError, match=r"t=\d+\.\d+"):
        env.run(max_events=10)
    assert env.now > 0  # the clock really advanced before the trip


def test_max_events_budget_permits_terminating_runs():
    env = Environment()
    done = []

    def proc(env):
        for _ in range(5):
            yield env.timeout(1.0)
        done.append(env.now)

    env.process(proc(env))
    # Generous budget: the run quiesces long before the cap.
    assert env.run(max_events=100) == 5.0
    assert done == [5.0]
    assert env.pending_events == 0


def test_negative_max_events_rejected():
    env = Environment()
    with pytest.raises(SimulationError, match="max_events"):
        env.run(max_events=-1)
