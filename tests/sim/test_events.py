"""Edge-case tests for events, failure propagation and defusing."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.events import EventQueue


def test_unwaited_failure_surfaces():
    """A failed event nobody observes must not pass silently."""
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(failing(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_stays_quiet_until_observed():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    process = env.process(failing(env)).defuse()
    env.run()  # no raise: the failure was defused
    assert process.triggered and not process.ok
    assert isinstance(process.value, ValueError)


def test_defused_failure_delivered_to_late_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("late boom")

    process = env.process(failing(env)).defuse()
    caught = []

    def waiter(env):
        yield env.timeout(5.0)  # attach well after the failure
        try:
            yield process
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    env.run()
    assert caught == ["late boom"]


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError, match="before trigger"):
        event.value
    with pytest.raises(SimulationError, match="before trigger"):
        event.ok


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError, match="exception instance"):
        env.event().fail("not an exception")


def test_process_waiting_on_another_failed_process():
    env = Environment()
    outcomes = []

    def child(env):
        yield env.timeout(1.0)
        raise RuntimeError("child died")

    def parent(env):
        try:
            yield env.process(child(env))
        except RuntimeError as exc:
            outcomes.append(str(exc))

    env.process(parent(env))
    env.run()
    assert outcomes == ["child died"]


def test_event_queue_pop_empty():
    with pytest.raises(SimulationError, match="empty"):
        EventQueue().pop()


def test_event_queue_peek_empty():
    with pytest.raises(SimulationError, match="empty"):
        EventQueue().peek_time()


def test_event_queue_orders_by_time_then_priority_then_seq():
    env = Environment()
    queue = EventQueue()
    first = env.event()
    second = env.event()
    third = env.event()
    queue.push(2.0, 1, first)
    queue.push(1.0, 1, second)
    queue.push(1.0, 0, third)  # urgent at the same time wins
    assert queue.pop().event is third
    assert queue.pop().event is second
    assert queue.pop().event is first


def test_schedule_into_past_rejected():
    env = Environment()
    with pytest.raises(SimulationError, match="past"):
        env.schedule(env.event(), delay=-0.1)
