"""Unit tests for simulated locks and resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FifoResource, SimLock


def test_uncontended_lock_grants_immediately():
    env = Environment()
    lock = SimLock(env)
    seen = []

    def proc(env):
        yield lock.acquire("a")
        seen.append(env.now)
        lock.release("a")

    env.process(proc(env))
    env.run()
    assert seen == [0.0]
    assert not lock.locked


def test_contended_lock_is_fifo():
    env = Environment()
    lock = SimLock(env)
    order = []

    def proc(env, name, hold):
        yield lock.acquire(name)
        order.append((name, env.now))
        yield env.timeout(hold)
        lock.release(name)

    env.process(proc(env, "first", 2.0))
    env.process(proc(env, "second", 1.0))
    env.process(proc(env, "third", 1.0))
    env.run()
    assert order == [("first", 0.0), ("second", 2.0), ("third", 3.0)]


def test_release_by_non_holder_rejected():
    env = Environment()
    lock = SimLock(env)

    def proc(env):
        yield lock.acquire("owner")
        with pytest.raises(SimulationError):
            lock.release("impostor")
        lock.release("owner")

    env.process(proc(env))
    env.run()


def test_reentrant_acquire_rejected():
    env = Environment()
    lock = SimLock(env)

    def proc(env):
        yield lock.acquire("a")
        with pytest.raises(SimulationError):
            lock.acquire("a")
        lock.release("a")

    env.process(proc(env))
    env.run()


def test_lock_cancel_removes_waiter():
    env = Environment()
    lock = SimLock(env)
    served = []

    def holder(env):
        yield lock.acquire("holder")
        yield env.timeout(5.0)
        lock.release("holder")

    def impatient(env):
        yield env.timeout(1.0)
        lock.acquire("impatient")
        yield env.timeout(1.0)
        assert lock.cancel("impatient") is True

    def patient(env):
        yield env.timeout(1.5)
        yield lock.acquire("patient")
        served.append(env.now)
        lock.release("patient")

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    assert served == [5.0]


def test_cancel_unknown_token_returns_false():
    env = Environment()
    lock = SimLock(env)
    assert lock.cancel("nobody") is False


def test_none_token_rejected():
    env = Environment()
    lock = SimLock(env)
    with pytest.raises(SimulationError):
        lock.acquire(None)


def test_resource_capacity_admits_up_to_capacity():
    env = Environment()
    res = FifoResource(env, capacity=2)
    entered = []

    def proc(env, name):
        yield res.acquire()
        entered.append((name, env.now))
        yield env.timeout(1.0)
        res.release()

    for name in ("a", "b", "c"):
        env.process(proc(env, name))
    env.run()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_bad_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        FifoResource(env, capacity=0)


def test_resource_over_release_rejected():
    env = Environment()
    res = FifoResource(env, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_available_accounting():
    env = Environment()
    res = FifoResource(env, capacity=3)

    def proc(env):
        yield res.acquire()
        assert res.available == 2
        res.release()
        assert res.available == 3

    env.process(proc(env))
    env.run()
