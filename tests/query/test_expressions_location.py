"""Location pseudo-column resolution details."""

import pytest

from repro.errors import BindingError
from repro.geometry import Point
from repro.comm.tuples import DeviceTuple
from repro.query import EvaluationContext, evaluate, parse_expression


def located_row(device_type, device_id, x, y):
    return DeviceTuple(device_type, device_id,
                       {"id": device_id, "loc_x": x, "loc_y": y})


def test_unqualified_loc_with_single_table():
    context = EvaluationContext(
        tuples={"s": located_row("sensor", "m1", 3.0, 4.0)})
    loc = evaluate(parse_expression("loc"), context)
    assert (loc.x, loc.y) == (3.0, 4.0)


def test_unqualified_loc_ambiguous_with_two_tables():
    context = EvaluationContext(tuples={
        "s": located_row("sensor", "m1", 1, 2),
        "c": located_row("camera", "c1", 3, 4)})
    with pytest.raises(BindingError, match="ambiguous"):
        evaluate(parse_expression("loc"), context)


def test_qualified_loc_disambiguates():
    context = EvaluationContext(tuples={
        "s": located_row("sensor", "m1", 1, 2),
        "c": located_row("camera", "c1", 3, 4)})
    loc = evaluate(parse_expression("c.loc"), context)
    assert (loc.x, loc.y) == (3, 4)


def test_explicit_loc_column_wins_over_pseudo():
    """A real column named ``loc`` shadows the synthetic Point."""
    row = DeviceTuple("sensor", "m1",
                      {"loc": "room-7", "loc_x": 1.0, "loc_y": 2.0})
    context = EvaluationContext(tuples={"s": row})
    assert evaluate(parse_expression("s.loc"), context) == "room-7"


def test_loc_requires_both_coordinates():
    row = DeviceTuple("sensor", "m1", {"loc_x": 1.0})
    context = EvaluationContext(tuples={"s": row})
    with pytest.raises(Exception):
        evaluate(parse_expression("s.loc"), context)
