"""QueryCatalog: lifecycle, reader lists, edge memory, reporting."""

from types import SimpleNamespace

import pytest

from repro.query import QueryCatalog, RegisteredQuery


def make_query(name, table="sensor", action="photo"):
    plan = SimpleNamespace(query_name=name, event_table=table,
                           action=SimpleNamespace(name=action))
    return RegisteredQuery(plan=plan)


class TestLifecycle:
    def test_register_assigns_monotone_seq(self):
        catalog = QueryCatalog()
        first = catalog.register(make_query("a"))
        second = catalog.register(make_query("b"))
        assert (first.seq, second.seq) == (0, 1)
        assert catalog.registered_total == 2
        assert list(catalog.queries) == ["a", "b"]

    def test_by_table_keeps_registration_order(self):
        catalog = QueryCatalog()
        catalog.register(make_query("a", table="sensor"))
        catalog.register(make_query("p", table="phone"))
        catalog.register(make_query("b", table="sensor"))
        assert [q.name for q in catalog.readers("sensor")] == ["a", "b"]
        assert [q.name for q in catalog.readers("phone")] == ["p"]

    def test_dropping_last_reader_removes_the_table(self):
        catalog = QueryCatalog()
        catalog.register(make_query("a"))
        catalog.register(make_query("b"))
        catalog.drop("a")
        assert "sensor" in catalog.by_table
        catalog.drop("b")
        assert "sensor" not in catalog.by_table
        assert catalog.dropped_total == 2

    def test_reregistration_appends_at_the_end(self):
        catalog = QueryCatalog()
        catalog.register(make_query("a"))
        catalog.register(make_query("b"))
        catalog.drop("a")
        renewed = catalog.register(make_query("a"))
        assert [q.name for q in catalog.readers("sensor")] == ["b", "a"]
        assert renewed.seq == 2  # a fresh seq, never reused

    def test_drop_unknown_raises(self):
        with pytest.raises(KeyError):
            QueryCatalog().drop("ghost")

    def test_set_enabled_toggles(self):
        catalog = QueryCatalog()
        catalog.register(make_query("a"))
        assert catalog.set_enabled("a", False).enabled is False
        assert catalog.get("a").enabled is False
        catalog.set_enabled("a", True)
        assert catalog.get("a").enabled is True

    def test_container_protocol(self):
        catalog = QueryCatalog()
        query = catalog.register(make_query("a"))
        assert "a" in catalog and "b" not in catalog
        assert len(catalog) == 1
        assert list(catalog) == [query]


class TestEdgeMemory:
    def test_set_and_read_edges(self):
        catalog = QueryCatalog()
        query = catalog.register(make_query("a"))
        assert catalog.edge_state("a", "m1") is False
        catalog.set_edge(query, "m1", True)
        assert catalog.edge_state("a", "m1") is True
        catalog.set_edge(query, "m1", False)
        assert catalog.edge_state("a", "m1") is False

    def test_held_queries_track_non_empty_memory(self):
        catalog = QueryCatalog()
        query = catalog.register(make_query("a"))
        other = catalog.register(make_query("b"))
        assert catalog.held_queries("sensor") == []
        catalog.set_edge(query, "m1", True)
        assert catalog.held_queries("sensor") == [query]
        catalog.set_edge(other, "m2", True)
        catalog.set_edge(query, "m1", False)
        assert catalog.held_queries("sensor") == [other]

    def test_prune_edges_clears_scanned_non_matches_only(self):
        catalog = QueryCatalog()
        query = catalog.register(make_query("a"))
        catalog.set_edge(query, "m1", True)
        catalog.set_edge(query, "m2", True)
        catalog.set_edge(query, "m3", True)
        # m1 still matches, m2 was scanned and stopped matching, m3
        # was not scanned at all (its device missed this poll).
        catalog.prune_edges(query, seen={"m1", "m2"}, matched={"m1"})
        assert catalog.edge_state("a", "m1") is True
        assert catalog.edge_state("a", "m2") is False
        assert catalog.edge_state("a", "m3") is True

    def test_drop_forgets_edges(self):
        catalog = QueryCatalog()
        query = catalog.register(make_query("a"))
        catalog.set_edge(query, "m1", True)
        catalog.drop("a")
        assert catalog.held_queries("sensor") == []
        assert catalog.edge_state("a", "m1") is False


class TestReport:
    def test_report_lists_queries_in_registration_order(self):
        catalog = QueryCatalog()
        catalog.register(make_query("b", action="photo"))
        query = catalog.register(make_query("a", table="phone",
                                            action="sendphoto"))
        query.events_detected = 3
        query.requests_emitted = 2
        catalog.set_enabled("b", False)
        report = catalog.report()
        assert [entry["name"] for entry in report] == ["b", "a"]
        assert report[0]["state"] == "disabled"
        assert report[1] == {
            "name": "a", "state": "enabled", "event_table": "phone",
            "action": "sendphoto", "priority": 1,
            "events_detected": 3, "requests_emitted": 2,
            "requests_rejected": 0, "uncovered_events": 0,
        }
