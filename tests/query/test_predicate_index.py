"""Predicate index: indexed matching == brute force, always.

The index is allowed to return candidate supersets internally, but
``match`` must post-filter to exactly the queries whose
:class:`~repro.query.BandForm` admits the tuple. Hypothesis drives
arbitrary band populations (points, closed/open/half-open intervals,
residuals, band-less and unsatisfiable forms) against arbitrary rows
and checks the match set against evaluating every form directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.tuples import DeviceTuple
from repro.query import (
    Band,
    BandForm,
    ColumnRef,
    Comparison,
    EvaluationContext,
    FunctionRegistry,
    Literal,
    PredicateIndex,
    evaluate,
)

ATTRIBUTES = ("temperature", "light", "battery")

#: A small shared value pool so endpoints, points and row values
#: collide often — the interesting cases live on the boundaries.
VALUES = st.sampled_from([0.0, 1.0, 2.0, 2.5, 3.0, 5.0, 7.5, 10.0])

FUNCTIONS = FunctionRegistry()


def interval_band(attribute, low, high, low_strict, high_strict):
    if low > high:
        low, high = high, low
    return Band(attribute, low=low, high=high,
                low_strict=low_strict, high_strict=high_strict)


def band_strategy(attribute):
    point = st.builds(
        lambda v: Band(attribute, point=v, has_point=True), VALUES)
    interval = st.builds(interval_band, st.just(attribute), VALUES,
                         VALUES, st.booleans(), st.booleans())
    open_low = st.builds(
        lambda v, strict: Band(attribute, low=v, low_strict=strict),
        VALUES, st.booleans())
    open_high = st.builds(
        lambda v, strict: Band(attribute, high=v, high_strict=strict),
        VALUES, st.booleans())
    return st.one_of(interval, point, open_low, open_high)


residuals = st.one_of(
    st.none(),
    st.builds(lambda v: Comparison(">", ColumnRef("s", "accel_x"),
                                   Literal(v)), VALUES),
)


@st.composite
def band_forms(draw):
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return BandForm(unsatisfiable=True)
    chosen = draw(st.lists(st.sampled_from(ATTRIBUTES), unique=True,
                           max_size=2))
    bands = tuple(draw(band_strategy(attribute))
                  for attribute in chosen)
    return BandForm(bands, draw(residuals))


@st.composite
def rows(draw):
    values = {attribute: draw(VALUES) for attribute in ATTRIBUTES}
    values["accel_x"] = draw(VALUES)
    return DeviceTuple(device_type="sensor", device_id="m1",
                       values=values)


def residual_test_for(row):
    def test(alias, residual):
        context = EvaluationContext(tuples={alias: row},
                                    functions=FUNCTIONS)
        return bool(evaluate(residual, context))
    return test


def brute_force(forms, row):
    context = EvaluationContext(tuples={"s": row}, functions=FUNCTIONS)
    return {f"q{i}" for i, form in enumerate(forms)
            if form.matches(row, context)}


def build_index(forms):
    index = PredicateIndex("sensor")
    for i, form in enumerate(forms):
        index.add(f"q{i}", i, "s", form)
    return index


def matched_names(index, row, admit=None):
    return {name for _seq, name
            in index.match(row, residual_test_for(row), admit=admit)}


@settings(max_examples=200, deadline=None)
@given(st.lists(band_forms(), max_size=12), rows())
def test_match_set_equals_brute_force(forms, row):
    index = build_index(forms)
    assert matched_names(index, row) == brute_force(forms, row)


@settings(max_examples=100, deadline=None)
@given(st.lists(band_forms(), min_size=2, max_size=10), rows(),
       st.data())
def test_drop_and_reregister_round_trip(forms, row, data):
    index = build_index(forms)
    before = matched_names(index, row)
    victim = data.draw(st.integers(0, len(forms) - 1))
    index.remove(f"q{victim}")
    without = {name for name in brute_force(forms, row)
               if name != f"q{victim}"}
    assert matched_names(index, row) == without
    index.add(f"q{victim}", victim, "s", forms[victim])
    assert matched_names(index, row) == before


@settings(max_examples=100, deadline=None)
@given(st.lists(band_forms(), max_size=10), rows())
def test_match_returns_seq_with_name(forms, row):
    index = build_index(forms)
    for seq, name in index.match(row, residual_test_for(row)):
        assert name == f"q{seq}"


@settings(max_examples=100, deadline=None)
@given(st.lists(band_forms(), min_size=1, max_size=10), rows())
def test_admit_prefilter_excludes_without_evaluation(forms, row):
    index = build_index(forms)
    allowed = {f"q{i}" for i in range(0, len(forms), 2)}
    names = matched_names(index, row, admit=allowed.__contains__)
    assert names == brute_force(forms, row) & allowed


def test_amortized_rebuild_keeps_matching_exact():
    """Bulk add, then bulk drop: rebuilds fire lazily at lookup time."""
    forms = [BandForm((Band("temperature", low=float(i),
                            high=float(i + 10)),))
             for i in range(300)]
    index = build_index(forms)
    sample = DeviceTuple(device_type="sensor", device_id="m1",
                         values={"temperature": 105.0})
    # First lookup folds the 300-entry overflow into the tree.
    assert matched_names(index, sample) == brute_force(forms, sample)
    assert index.stats()["rebuilds"] == 1
    for i in range(200):
        index.remove(f"q{i}")
    # Tombstones now outnumber the threshold; the next lookup rebuilds
    # again and the dead entries never resurface.
    live = {f"q{i}" for i in range(200, 300)}
    assert matched_names(index, sample) == \
        brute_force(forms, sample) & live
    assert index.stats()["rebuilds"] == 2


def test_unsatisfiable_and_bandless_forms():
    index = PredicateIndex("sensor")
    index.add("never", 0, "s", BandForm(unsatisfiable=True))
    index.add("always", 1, "s", BandForm())
    sample = DeviceTuple(device_type="sensor", device_id="m1",
                         values={"temperature": 1.0})
    assert matched_names(index, sample) == {"always"}
    stats = index.stats()
    assert stats["unsatisfiable_queries"] == 1
    assert stats["residual_only_queries"] == 1


def test_non_numeric_row_value_skips_interval_structures():
    index = PredicateIndex("sensor")
    index.add("ranged", 0, "s",
              BandForm((Band("temperature", low=1.0),)))
    index.add("pointed", 1, "s",
              BandForm((Band("temperature", point="hot",
                             has_point=True),)))
    sample = DeviceTuple(device_type="sensor", device_id="m1",
                         values={"temperature": "hot"})
    # The ill-typed value reaches neither bisect nor compare_values:
    # it can only equal the point bucket.
    assert matched_names(index, sample) == {"pointed"}
