"""Number-literal lexing details, including scientific notation."""

import pytest

from repro.query import TokenKind, parse_expression, tokenize
from repro.query.ast import Literal


def number_tokens(text):
    return [t.text for t in tokenize(text) if t.kind is TokenKind.NUMBER]


def test_scientific_notation_variants():
    assert number_tokens("1e6 6.1e-05 2E+3 7e2") == [
        "1e6", "6.1e-05", "2E+3", "7e2"]


def test_scientific_parse_values():
    assert parse_expression("1e6") == Literal(1e6)
    assert parse_expression("6.1e-05") == Literal(6.1e-05)
    assert parse_expression("2E+3") == Literal(2000.0)


def test_exponent_without_digits_is_identifier_suffix():
    # "5e" is the number 5 followed by the identifier "e".
    tokens = tokenize("5e")
    assert [t.kind for t in tokens[:-1]] == [TokenKind.NUMBER,
                                             TokenKind.IDENTIFIER]


def test_exponent_sign_without_digits_not_consumed():
    # "5e+" -> number 5, identifier e, operator +.
    tokens = tokenize("5e+")
    assert [(t.kind, t.text) for t in tokens[:-1]] == [
        (TokenKind.NUMBER, "5"),
        (TokenKind.IDENTIFIER, "e"),
        (TokenKind.OPERATOR, "+"),
    ]


def test_integer_stays_int():
    value = parse_expression("42").value
    assert value == 42 and isinstance(value, int)


def test_float_stays_float():
    value = parse_expression("42.0").value
    assert value == 42.0 and isinstance(value, float)
