"""Unit tests for expression evaluation over device tuples."""

import pytest

from repro.errors import BindingError, QueryError
from repro.geometry import Point
from repro.comm.tuples import DeviceTuple
from repro.query import EvaluationContext, FunctionRegistry, evaluate, parse_expression
from repro.query.functions import install_standard_functions


def sensor_row(accel_x=0.0, loc=(5.0, 5.0)):
    return DeviceTuple("sensor", "mote1", {
        "id": "mote1", "loc_x": loc[0], "loc_y": loc[1],
        "accel_x": accel_x, "temperature": 22.0})


def camera_row():
    return DeviceTuple("camera", "cam1", {
        "id": "cam1", "ip": "10.0.0.1", "loc_x": 0.0, "loc_y": 0.0})


@pytest.fixture
def context():
    functions = FunctionRegistry()
    install_standard_functions(functions)
    functions.register("coverage", lambda camera_id, loc: True, arity=2)
    return EvaluationContext(
        tuples={"s": sensor_row(accel_x=800.0), "c": camera_row()},
        functions=functions,
    )


def ev(text, context):
    return evaluate(parse_expression(text), context)


def test_literal(context):
    assert ev("500", context) == 500
    assert ev("3.5", context) == 3.5
    assert ev('"hello"', context) == "hello"
    assert ev("TRUE", context) is True


def test_qualified_column(context):
    assert ev("s.accel_x", context) == 800.0
    assert ev("c.ip", context) == "10.0.0.1"


def test_unqualified_unique_column(context):
    assert ev("temperature", context) == 22.0


def test_unqualified_ambiguous_column(context):
    with pytest.raises(BindingError, match="ambiguous"):
        ev("id", context)


def test_unknown_column(context):
    with pytest.raises(BindingError, match="unknown column"):
        ev("altitude", context)


def test_unknown_alias(context):
    with pytest.raises(BindingError, match="unknown table alias"):
        ev("x.accel_x", context)


def test_loc_pseudo_column(context):
    loc = ev("s.loc", context)
    assert isinstance(loc, Point)
    assert (loc.x, loc.y) == (5.0, 5.0)


def test_comparisons(context):
    assert ev("s.accel_x > 500", context) is True
    assert ev("s.accel_x < 500", context) is False
    assert ev("s.accel_x >= 800", context) is True
    assert ev("s.accel_x <= 799", context) is False
    assert ev("s.accel_x = 800", context) is True
    assert ev("s.accel_x <> 800", context) is False
    assert ev('c.ip = "10.0.0.1"', context) is True


def test_type_mismatch_comparison_raises(context):
    with pytest.raises(QueryError, match="cannot compare"):
        ev('s.accel_x > "high"', context)


def test_boolean_logic(context):
    assert ev("s.accel_x > 500 AND s.temperature > 20", context) is True
    assert ev("s.accel_x > 900 OR s.temperature > 20", context) is True
    assert ev("NOT s.accel_x > 900", context) is True
    assert ev("s.accel_x > 900 AND s.temperature > 20", context) is False


def test_and_short_circuits(context):
    # The second operand would raise if evaluated.
    assert ev("s.accel_x > 900 AND nosuch(1)", context) is False


def test_non_boolean_condition_raises(context):
    with pytest.raises(QueryError, match="expected a boolean"):
        ev("s.accel_x AND TRUE", context)


def test_function_call(context):
    assert ev("coverage(c.id, s.loc)", context) is True
    assert ev("distance(s.loc, c.loc)", context) == pytest.approx(
        (50.0) ** 0.5)


def test_function_arity_enforced(context):
    with pytest.raises(QueryError, match="takes 2"):
        ev("coverage(c.id)", context)


def test_unknown_function(context):
    with pytest.raises(BindingError, match="unknown function"):
        ev("teleport(1)", context)


def test_figure_1_predicate_end_to_end(context):
    predicate = "s.accel_x > 500 AND coverage(c.id, s.loc)"
    assert ev(predicate, context) is True
    quiet = context.bind("s", sensor_row(accel_x=10.0))
    assert ev(predicate, quiet) is False


def test_context_bind_does_not_mutate(context):
    updated = context.bind("s", sensor_row(accel_x=1.0))
    assert ev("s.accel_x", context) == 800.0
    assert ev("s.accel_x", updated) == 1.0


def test_star_not_evaluable(context):
    from repro.query.ast import Star
    with pytest.raises(QueryError, match="SELECT item"):
        evaluate(Star(), context)
