"""Unit tests for the SQL parser, anchored on the paper's examples."""

import pytest

from repro.errors import ParseError
from repro.query import (
    BooleanOp,
    ColumnRef,
    Comparison,
    CreateActionStatement,
    CreateAQStatement,
    DropAQStatement,
    FunctionCall,
    Literal,
    Not,
    SelectQuery,
    Star,
    parse,
    parse_expression,
)

#: The paper's Figure 1 example, verbatim structure.
FIGURE_1 = '''CREATE AQ snapshot AS
SELECT photo(c.ip, s.loc, "photos/admin")
FROM sensor s, camera c
WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''

#: The paper's Section 2.2 CREATE ACTION example.
SECTION_2_2 = '''CREATE ACTION sendphoto(String phone_no,
String photo_pathname)
AS "lib/users/sendphoto.dll"
PROFILE "profiles/users/sendphoto.xml"'''


def test_parse_figure_1_query():
    statement = parse(FIGURE_1)
    assert isinstance(statement, CreateAQStatement)
    assert statement.name == "snapshot"
    query = statement.query
    assert [(t.table, t.alias) for t in query.tables] == [
        ("sensor", "s"), ("camera", "c")]
    action = query.select_items[0]
    assert isinstance(action, FunctionCall)
    assert action.name == "photo"
    assert action.args == (
        ColumnRef("c", "ip"), ColumnRef("s", "loc"),
        Literal("photos/admin"))
    where = query.where
    assert isinstance(where, BooleanOp) and where.op == "AND"
    threshold, coverage = where.operands
    assert threshold == Comparison(">", ColumnRef("s", "accel_x"),
                                   Literal(500))
    assert coverage == FunctionCall(
        "coverage", (ColumnRef("c", "id"), ColumnRef("s", "loc")))


def test_parse_section_2_2_create_action():
    statement = parse(SECTION_2_2)
    assert isinstance(statement, CreateActionStatement)
    assert statement.name == "sendphoto"
    assert [(p.type_name, p.name) for p in statement.parameters] == [
        ("String", "phone_no"), ("String", "photo_pathname")]
    assert statement.library_path == "lib/users/sendphoto.dll"
    assert statement.profile_path == "profiles/users/sendphoto.xml"


def test_parse_drop_aq():
    statement = parse("DROP AQ snapshot;")
    assert statement == DropAQStatement(name="snapshot")


def test_parse_plain_select():
    statement = parse("SELECT id, accel_x FROM sensor")
    assert isinstance(statement, SelectQuery)
    assert statement.tables[0].alias == "sensor"  # alias defaults to name
    assert statement.where is None


def test_parse_select_star():
    statement = parse("SELECT * FROM camera c")
    assert statement.select_items == (Star(),)


def test_create_action_without_parameters():
    statement = parse('CREATE ACTION ping() AS "lib/ping.dll" '
                      'PROFILE "profiles/ping.xml"')
    assert statement.parameters == ()


def test_operator_precedence_or_under_and():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, BooleanOp) and expr.op == "OR"
    right = expr.operands[1]
    assert isinstance(right, BooleanOp) and right.op == "AND"


def test_parentheses_override_precedence():
    expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
    assert isinstance(expr, BooleanOp) and expr.op == "AND"
    assert isinstance(expr.operands[0], BooleanOp)
    assert expr.operands[0].op == "OR"


def test_not_binds_tighter_than_and():
    expr = parse_expression("NOT a = 1 AND b = 2")
    assert isinstance(expr, BooleanOp) and expr.op == "AND"
    assert isinstance(expr.operands[0], Not)


def test_bang_equals_normalized():
    expr = parse_expression("a != 1")
    assert isinstance(expr, Comparison) and expr.op == "<>"


def test_boolean_literals():
    assert parse_expression("TRUE") == Literal(True)
    assert parse_expression("false") == Literal(False)


def test_nested_function_calls():
    expr = parse_expression("min(distance(s.loc, c.loc), 10.0)")
    assert isinstance(expr, FunctionCall) and expr.name == "min"
    assert isinstance(expr.args[0], FunctionCall)


def test_duplicate_alias_rejected():
    with pytest.raises(ParseError, match="duplicate table alias"):
        parse("SELECT * FROM sensor s, camera s")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError, match="trailing"):
        parse("SELECT * FROM sensor s extra stuff nonsense")


def test_error_carries_position():
    with pytest.raises(ParseError, match="line"):
        parse("SELECT FROM sensor")


def test_missing_profile_clause_rejected():
    with pytest.raises(ParseError, match="PROFILE"):
        parse('CREATE ACTION f() AS "lib/f.dll"')


def test_create_requires_action_or_aq():
    with pytest.raises(ParseError, match="ACTION or AQ"):
        parse("CREATE TABLE t")


def test_expression_round_trips_through_str():
    """str(ast) is parseable and yields the same tree (pretty-printing)."""
    source = "s.accel_x > 500 AND coverage(c.id, s.loc) OR NOT ok(a.b)"
    tree = parse_expression(source)
    assert parse_expression(str(tree)) == tree


def test_query_str_round_trip():
    statement = parse(FIGURE_1)
    assert parse(str(statement.query)) == statement.query
