"""Arithmetic expressions and EXPLAIN in the query dialect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query import (
    Arithmetic,
    EvaluationContext,
    ExplainStatement,
    FunctionRegistry,
    Negate,
    evaluate,
    parse,
    parse_expression,
)
from repro.query.functions import install_standard_functions
from repro.comm.tuples import DeviceTuple


@pytest.fixture
def context():
    functions = FunctionRegistry()
    install_standard_functions(functions)
    row = DeviceTuple("sensor", "m1", {
        "accel_x": 100.0, "accel_y": 50.0, "temperature": 20.0})
    return EvaluationContext(tuples={"s": row}, functions=functions)


def ev(text, context):
    return evaluate(parse_expression(text), context)


def test_basic_arithmetic(context):
    assert ev("1 + 2", context) == 3
    assert ev("10 - 4", context) == 6
    assert ev("3 * 4", context) == 12
    assert ev("10 / 4", context) == 2.5


def test_precedence_mul_over_add(context):
    assert ev("2 + 3 * 4", context) == 14
    assert ev("(2 + 3) * 4", context) == 20


def test_left_associativity(context):
    assert ev("10 - 3 - 2", context) == 5
    assert ev("100 / 10 / 2", context) == 5


def test_unary_minus(context):
    assert ev("-5", context) == -5
    # Note: "--5" is a SQL comment, so double negation needs parens.
    assert ev("-(-5)", context) == 5
    assert ev("3 + -2", context) == 1


def test_columns_in_arithmetic(context):
    assert ev("s.accel_x + s.accel_y", context) == 150.0
    assert ev("s.accel_x * 2 > 150", context) is True


def test_arithmetic_in_comparison(context):
    assert ev("s.accel_x - s.accel_y > s.temperature", context) is True


def test_arithmetic_in_function_args(context):
    assert ev("abs(s.accel_y - s.accel_x)", context) == 50.0
    assert ev("max(s.accel_x / 2, s.accel_y + 1)", context) == 51.0


def test_string_concatenation(context):
    assert ev('"a" + "b"', context) == "ab"


def test_division_by_zero(context):
    with pytest.raises(QueryError, match="division by zero"):
        ev("1 / 0", context)


def test_type_errors(context):
    with pytest.raises(QueryError, match="needs numbers"):
        ev('"a" * 2', context)
    with pytest.raises(QueryError, match="negate"):
        ev('-"a"', context)


def test_comment_still_works():
    expr = parse_expression("1 + 2 -- trailing comment\n")
    assert isinstance(expr, Arithmetic)


def test_str_round_trip():
    source = "-(a.x + 2) * 3 - b.y / 4"
    tree = parse_expression(source)
    assert parse_expression(str(tree)) == tree


@given(st.integers(-100, 100), st.integers(-100, 100),
       st.integers(1, 100))
def test_arithmetic_matches_python(a, b, c):
    context = EvaluationContext()
    result = ev(f"({a}) + ({b}) * ({c})", context)
    assert result == a + b * c
    result = ev(f"({a}) - ({b}) / ({c})", context)
    assert result == pytest.approx(a - b / c)


def test_parse_explain_select():
    statement = parse("EXPLAIN SELECT s.id FROM sensor s")
    assert isinstance(statement, ExplainStatement)


def test_parse_explain_create_aq():
    statement = parse('''EXPLAIN CREATE AQ q AS
        SELECT photo(c.ip, s.loc, "p") FROM sensor s, camera c''')
    assert isinstance(statement, ExplainStatement)


def test_engine_explain_does_not_register():
    from repro import AortaEngine, Environment
    engine = AortaEngine(Environment())
    text = engine.execute('''EXPLAIN CREATE AQ q AS
        SELECT photo(c.ip, s.loc, "p")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    assert "EventScan(sensor AS s)" in text
    assert "SharedAction(photo)" in text
    assert "q" not in engine.continuous.queries


def test_engine_explain_select():
    from repro import AortaEngine, Environment
    engine = AortaEngine(Environment())
    text = engine.execute(
        "EXPLAIN SELECT s.id FROM sensor s WHERE s.accel_x > 500")
    assert "Filter" in text and "Scan(sensor AS s)" in text


def test_engine_explain_drop_rejected():
    from repro import AortaEngine, Environment
    engine = AortaEngine(Environment())
    with pytest.raises(QueryError, match="EXPLAIN supports"):
        engine.execute("EXPLAIN DROP AQ q")
