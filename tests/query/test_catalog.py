"""Unit tests for the schema catalog and semantic validation."""

import pytest

from repro.errors import BindingError, RegistrationError
from repro.profiles.defaults import camera_catalog, phone_catalog, sensor_catalog
from repro.query import SchemaCatalog, parse


@pytest.fixture
def schema():
    schema = SchemaCatalog()
    schema.register_table(sensor_catalog())
    schema.register_table(camera_catalog())
    schema.register_table(phone_catalog())
    return schema


def test_table_registration(schema):
    assert schema.has_table("sensor")
    assert schema.table_names() == ["camera", "phone", "sensor"]
    with pytest.raises(BindingError, match="unknown table"):
        schema.table("toaster")


def test_duplicate_table_rejected(schema):
    with pytest.raises(RegistrationError, match="already registered"):
        schema.register_table(sensor_catalog())


def test_has_column_includes_loc_pseudo(schema):
    assert schema.has_column("sensor", "accel_x")
    assert schema.has_column("sensor", "loc")
    assert not schema.has_column("sensor", "altitude")


def test_validate_figure_1_query(schema):
    statement = parse('''CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    schema.validate_select(statement.query)  # should not raise


def test_validate_unknown_table(schema):
    statement = parse("SELECT * FROM toaster t")
    with pytest.raises(BindingError, match="unknown table"):
        schema.validate_select(statement)


def test_validate_unknown_alias(schema):
    statement = parse("SELECT x.accel_x FROM sensor s")
    with pytest.raises(BindingError, match="unknown table alias"):
        schema.validate_select(statement)


def test_validate_unknown_column(schema):
    statement = parse("SELECT s.altitude FROM sensor s")
    with pytest.raises(BindingError, match="no column"):
        schema.validate_select(statement)


def test_validate_ambiguous_unqualified_column(schema):
    statement = parse("SELECT id FROM sensor s, camera c")
    with pytest.raises(BindingError, match="ambiguous"):
        schema.validate_select(statement)


def test_validate_unqualified_unique_column(schema):
    statement = parse("SELECT accel_x FROM sensor s, camera c")
    schema.validate_select(statement)  # accel_x only in sensor


def test_resolve_alias_type(schema):
    statement = parse("SELECT * FROM sensor s, camera c")
    assert schema.resolve_alias_type(statement, "s") == "sensor"
    assert schema.resolve_alias_type(statement, "c") == "camera"
    assert schema.resolve_alias_type(statement, "x") is None
