"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.query import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("select Select SELECT")
    assert all(t.is_keyword("SELECT") for t in tokens[:-1])


def test_identifiers_preserve_case():
    assert texts("sensor accel_x myCamera") == [
        "sensor", "accel_x", "myCamera"]


def test_numbers_int_and_float():
    tokens = tokenize("500 3.14 0.5")
    assert [t.text for t in tokens[:-1]] == ["500", "3.14", "0.5"]
    assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])


def test_qualified_name_is_three_tokens():
    assert texts("s.accel_x") == ["s", ".", "accel_x"]


def test_strings_both_quote_styles():
    tokens = tokenize("'single' \"double\"")
    assert [t.text for t in tokens[:-1]] == ["single", "double"]
    assert all(t.kind is TokenKind.STRING for t in tokens[:-1])


def test_unterminated_string_raises_with_position():
    with pytest.raises(ParseError, match="unterminated"):
        tokenize('SELECT "oops')


def test_operators_longest_match():
    assert texts("a >= b <> c != d") == ["a", ">=", "b", "<>", "c", "!=", "d"]


def test_line_comment_skipped():
    assert texts("SELECT -- a comment\n x") == ["SELECT", "x"]


def test_unexpected_character_raises():
    with pytest.raises(ParseError, match="unexpected character"):
        tokenize("SELECT @")


def test_positions_tracked():
    tokens = tokenize("SELECT\n  x")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_end_sentinel():
    assert tokenize("")[-1].kind is TokenKind.END


def test_figure_1_query_tokenizes():
    text = '''CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''
    tokens = tokenize(text)
    assert tokens[0].is_keyword("CREATE")
    assert tokens[-1].kind is TokenKind.END
    words = [t.text for t in tokens]
    assert "photo" in words and "coverage" in words and "500" in words
