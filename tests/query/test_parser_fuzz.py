"""Property tests: random expression trees survive str() -> parse()."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query import parse_expression
from repro.query.ast import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    FunctionCall,
    Literal,
    Negate,
    Not,
)

identifiers = st.sampled_from(["s", "c", "t", "accel_x", "temp", "loc"])

literals = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(Literal),
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False,
              allow_infinity=False).map(lambda f: Literal(round(f, 6))),
    st.booleans().map(Literal),
    st.text(alphabet="abcxyz_/. ", max_size=12).map(Literal),
)

column_refs = st.builds(ColumnRef, qualifier=identifiers, name=identifiers)


def expressions(children):
    comparisons = st.builds(
        Comparison,
        op=st.sampled_from([">", "<", ">=", "<=", "=", "<>"]),
        left=children, right=children)
    arithmetic = st.builds(
        Arithmetic,
        op=st.sampled_from(["+", "-", "*", "/"]),
        left=children, right=children)
    boolean = st.builds(
        BooleanOp,
        op=st.sampled_from(["AND", "OR"]),
        operands=st.tuples(children, children))
    calls = st.builds(
        FunctionCall,
        name=st.sampled_from(["coverage", "distance", "f"]),
        args=st.tuples(children))
    return st.one_of(comparisons, arithmetic, boolean,
                     st.builds(Not, children),
                     st.builds(Negate, children), calls)


expression_trees = st.recursive(
    st.one_of(literals, column_refs), expressions, max_leaves=12)


@settings(max_examples=200, deadline=None)
@given(expression_trees)
def test_str_parse_round_trip(tree):
    """Pretty-printing any tree and re-parsing it yields the same tree."""
    rendered = str(tree)
    assert parse_expression(rendered) == tree


@settings(max_examples=100, deadline=None)
@given(expression_trees)
def test_column_refs_survive_round_trip(tree):
    rendered = str(tree)
    assert parse_expression(rendered).column_refs() == tree.column_refs()
