"""Band-form compilation: predicates -> per-attribute bands + residual."""

import pytest

from repro.comm.tuples import DeviceTuple
from repro.errors import QueryError
from repro.profiles.defaults import sensor_catalog
from repro.query import (
    Band,
    BandForm,
    EvaluationContext,
    FunctionRegistry,
    compile_event_predicate,
    evaluate,
    parse_expression,
)

INF = float("inf")


def compile_sql(text):
    return compile_event_predicate(parse_expression(text), "s",
                                   sensor_catalog())


def row(**values):
    defaults = {"id": "m1", "loc_x": 0.0, "loc_y": 0.0, "accel_x": 0.0,
                "accel_y": 0.0, "temperature": 20.0, "light": 100.0,
                "battery": 50.0}
    defaults.update(values)
    return DeviceTuple(device_type="sensor", device_id="m1",
                       values=defaults)


def context_for(tuple_row):
    return EvaluationContext(tuples={"s": tuple_row},
                             functions=FunctionRegistry())


class TestCompile:
    def test_interval_conjunction_is_one_band(self):
        form = compile_sql(
            "s.temperature >= 10 AND s.temperature < 20")
        assert form.residual is None
        assert form.bands == (Band("temperature", low=10.0, high=20.0,
                                   low_strict=False, high_strict=True),)

    def test_literal_on_the_left_flips(self):
        form = compile_sql("5 < s.temperature")
        (band,) = form.bands
        assert (band.low, band.low_strict, band.high) == (5.0, True, INF)

    def test_equality_becomes_point_band(self):
        form = compile_sql('s.id = "m7"')
        assert form.bands == (Band("id", point="m7", has_point=True),)
        assert form.residual is None

    def test_open_ended_range(self):
        form = compile_sql("s.battery > 1")
        (band,) = form.bands
        assert (band.low, band.low_strict, band.high) == (1.0, True, INF)

    def test_string_ordering_stays_residual(self):
        form = compile_sql('s.id > "a"')
        assert form.bands == ()
        assert form.residual is not None

    def test_residual_preserves_non_band_conjuncts(self):
        form = compile_sql(
            "s.temperature > 10 AND (s.accel_x > 1 OR s.accel_y > 1)")
        assert len(form.bands) == 1
        assert form.residual is not None
        sample = row(temperature=20.0, accel_x=5.0)
        assert evaluate(form.residual, context_for(sample)) is True

    def test_contradictory_intersection_is_unsatisfiable(self):
        form = compile_sql("s.temperature > 5 AND s.temperature < 3")
        assert form.unsatisfiable
        assert not form.matches(row(temperature=4.0),
                                context_for(row(temperature=4.0)))

    def test_point_inside_interval_keeps_the_point(self):
        form = compile_sql("s.temperature = 15 AND s.temperature > 10")
        assert form.bands == (Band("temperature", point=15,
                                   has_point=True),)

    def test_point_outside_interval_is_unsatisfiable(self):
        form = compile_sql("s.temperature = 5 AND s.temperature > 10")
        assert form.unsatisfiable

    def test_not_equal_stays_residual(self):
        form = compile_sql("s.temperature <> 5")
        assert form.bands == ()
        assert form.residual is not None

    def test_loc_pseudo_column_stays_residual(self):
        form = compile_sql("s.loc = 3")
        assert form.bands == ()
        assert form.residual is not None

    def test_foreign_qualifier_stays_residual(self):
        form = compile_sql('c.ip = "10.0.0.1"')
        assert form.bands == ()
        assert form.residual is not None

    def test_unqualified_reference_bands(self):
        form = compile_sql("temperature > 7")
        (band,) = form.bands
        assert band.attribute == "temperature"

    def test_none_predicate_matches_everything(self):
        form = compile_event_predicate(None, "s", sensor_catalog())
        assert form == BandForm()
        sample = row()
        assert form.matches(sample, context_for(sample))


class TestBand:
    def test_admits_respects_strictness(self):
        band = Band("temperature", low=10.0, high=20.0, low_strict=True)
        assert not band.admits(10.0)
        assert band.admits(10.5)
        assert band.admits(20.0)
        assert not band.admits(20.5)

    def test_point_band_equality_semantics(self):
        band = Band("light", point=1, has_point=True)
        assert band.admits(1.0)  # same as the evaluator's "="
        assert not band.admits(2)

    def test_admits_type_mismatch_raises_like_the_evaluator(self):
        band = Band("temperature", low=10.0)
        with pytest.raises(QueryError):
            band.admits("hot")

    def test_interval_intersection_tightens_both_ends(self):
        merged = Band("x", low=1.0, high=9.0).intersect(
            Band("x", low=3.0, high=12.0, low_strict=True))
        assert merged == Band("x", low=3.0, high=9.0, low_strict=True)

    def test_empty_intersection_is_none(self):
        assert Band("x", low=5.0).intersect(Band("x", high=3.0)) is None
        assert Band("x", low=5.0, low_strict=True).intersect(
            Band("x", high=5.0)) is None

    def test_non_numeric_point_against_interval_is_empty(self):
        point = Band("x", point="hot", has_point=True)
        assert point.intersect(Band("x", low=1.0)) is None


class TestMatchesEquivalence:
    """BandForm.matches is the predicate, exactly."""

    CASES = [
        "s.temperature >= 10 AND s.temperature < 20",
        "s.temperature > 10 AND s.light = 100 AND s.battery <= 60",
        's.id = "m1" AND s.temperature < 25',
        "s.accel_x > 1 OR s.accel_y > 1",
        "s.temperature > 10 AND (s.accel_x > 1 OR s.light = 100)",
    ]

    ROWS = [
        {"temperature": 15.0, "light": 100.0, "battery": 50.0},
        {"temperature": 10.0, "light": 99.0, "battery": 60.0},
        {"temperature": 30.0, "accel_x": 2.0},
        {"accel_y": 3.0, "light": 100.0},
    ]

    @pytest.mark.parametrize("sql", CASES)
    @pytest.mark.parametrize("values", ROWS)
    def test_matches_agrees_with_evaluate(self, sql, values):
        predicate = parse_expression(sql)
        form = compile_event_predicate(predicate, "s", sensor_catalog())
        sample = row(**values)
        context = context_for(sample)
        assert form.matches(sample, context) == bool(
            evaluate(predicate, context))
