"""Unit and property tests for 2-D geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, ViewSector, angle_difference, normalize_angle

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
angles = st.floats(min_value=-720, max_value=720, allow_nan=False)


def test_distance():
    assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)


def test_bearing_cardinal_directions():
    origin = Point(0, 0)
    assert origin.bearing_to(Point(1, 0)) == pytest.approx(0.0)
    assert origin.bearing_to(Point(0, 1)) == pytest.approx(90.0)
    assert origin.bearing_to(Point(-1, 0)) == pytest.approx(-180.0)
    assert origin.bearing_to(Point(0, -1)) == pytest.approx(-90.0)


def test_point_unpacks():
    x, y = Point(1.5, 2.5)
    assert (x, y) == (1.5, 2.5)


def test_normalize_angle_examples():
    assert normalize_angle(190) == pytest.approx(-170)
    assert normalize_angle(-190) == pytest.approx(170)
    assert normalize_angle(360) == pytest.approx(0)
    assert normalize_angle(180) == pytest.approx(-180)


@given(angles)
def test_normalize_angle_range(angle):
    folded = normalize_angle(angle)
    assert -180 <= folded < 180


@given(angles)
def test_normalize_angle_preserves_direction(angle):
    folded = normalize_angle(angle)
    # Same direction: sin/cos agree.
    assert math.sin(math.radians(folded)) == pytest.approx(
        math.sin(math.radians(angle)), abs=1e-9)
    assert math.cos(math.radians(folded)) == pytest.approx(
        math.cos(math.radians(angle)), abs=1e-9)


@given(angles, angles)
def test_angle_difference_symmetric_and_bounded(a, b):
    diff = angle_difference(a, b)
    assert 0 <= diff <= 180
    assert diff == pytest.approx(angle_difference(b, a), abs=1e-9)


@given(finite, finite, finite, finite)
def test_distance_symmetry(ax, ay, bx, by):
    a, b = Point(ax, ay), Point(bx, by)
    assert a.distance_to(b) == pytest.approx(b.distance_to(a))


def test_sector_covers_inside():
    sector = ViewSector(Point(0, 0), center=0, half_angle=45, max_range=10)
    assert sector.covers(Point(5, 0))
    assert sector.covers(Point(5, 4))      # within 45 degrees
    assert not sector.covers(Point(0, 5))  # 90 degrees off-center
    assert not sector.covers(Point(20, 0))  # beyond range


def test_sector_covers_own_origin():
    sector = ViewSector(Point(0, 0), center=0, half_angle=10, max_range=1)
    assert sector.covers(Point(0, 0))


def test_sector_validation():
    with pytest.raises(ValueError, match="half_angle"):
        ViewSector(Point(0, 0), center=0, half_angle=0, max_range=1)
    with pytest.raises(ValueError, match="max_range"):
        ViewSector(Point(0, 0), center=0, half_angle=10, max_range=0)


def test_full_circle_sector_covers_all_bearings():
    sector = ViewSector(Point(0, 0), center=0, half_angle=180, max_range=10)
    for angle in range(0, 360, 30):
        target = Point(5 * math.cos(math.radians(angle)),
                       5 * math.sin(math.radians(angle)))
        assert sector.covers(target)


@given(st.floats(min_value=-180, max_value=179.999),
       st.floats(min_value=0.5, max_value=9.5))
def test_sector_boundary_property(bearing, distance):
    sector = ViewSector(Point(0, 0), center=0, half_angle=60, max_range=10)
    target = Point(distance * math.cos(math.radians(bearing)),
                   distance * math.sin(math.radians(bearing)))
    expected = angle_difference(bearing, 0) <= 60
    assert sector.covers(target) == expected
