"""Backend equivalence: virtual and realtime(time_scale=0) are twins.

The realtime backend shares every line of process/event machinery with
the virtual backend; only pacing differs, and at ``time_scale=0``
pacing is a no-op. These tests pin that property end to end: the
golden-harness scenarios — the Figure 1 snapshot and the
continuous-outage fault-tolerance run — must produce *identical
normalized dumps* (full trace, statistics, serviced sets, and metric
snapshots with observability on) on both backends. Any drift between
the backends, however subtle, fails here first.
"""

from __future__ import annotations

import pytest

from repro.runtime import RealtimeRuntime, VirtualRuntime
from tests.obs.golden import diff_dumps, dump_engine, render_diff
from tests.obs.scenarios import continuous_outage_scenario, snapshot_scenario

SCENARIOS = {
    "snapshot": snapshot_scenario,
    "continuous_outage": continuous_outage_scenario,
}


def _run(scenario, backend: str, observability):
    env = (VirtualRuntime() if backend == "virtual"
           else RealtimeRuntime(time_scale=0))
    return scenario(observability, env=env)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("observability", [None, True],
                         ids=["obs-off", "obs-on"])
def test_backends_produce_identical_normalized_dumps(name, observability):
    scenario = SCENARIOS[name]
    virtual = dump_engine(_run(scenario, "virtual", observability))
    realtime = dump_engine(_run(scenario, "realtime", observability))
    differences = diff_dumps(virtual, realtime)
    assert not differences, render_diff(f"{name} (virtual vs realtime)",
                                        differences)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_realtime_scenarios_end_at_the_virtual_stop_time(name):
    scenario = SCENARIOS[name]
    virtual_engine = _run(scenario, "virtual", None)
    realtime_engine = _run(scenario, "realtime", None)
    assert realtime_engine.env.now == virtual_engine.env.now
    assert realtime_engine.env.backend_name == "realtime"
    assert virtual_engine.env.backend_name == "virtual"


def test_seeded_runs_are_identical_within_one_backend():
    # Determinism baseline: without it, cross-backend identity would
    # be vacuous.
    first = dump_engine(_run(snapshot_scenario, "realtime", None))
    second = dump_engine(_run(snapshot_scenario, "realtime", None))
    assert not diff_dumps(first, second)
