"""The Runtime protocol, the factory, and engine config selection."""

from __future__ import annotations

import pytest

from repro import AortaEngine, EngineConfig
from repro.errors import AortaError, SimulationError
from repro.runtime import (
    RUNTIME_NAMES,
    RealtimeRuntime,
    Runtime,
    VirtualRuntime,
    create_runtime,
)
from repro.sim import Environment


def test_both_backends_satisfy_the_protocol():
    assert isinstance(Environment(), Runtime)
    assert isinstance(RealtimeRuntime(time_scale=0), Runtime)


def test_virtual_runtime_is_the_environment():
    assert VirtualRuntime is Environment


def test_factory_builds_by_name():
    assert create_runtime("virtual").backend_name == "virtual"
    runtime = create_runtime("realtime", time_scale=0.25, strict=True)
    assert runtime.backend_name == "realtime"
    assert runtime.time_scale == 0.25
    assert runtime.strict


def test_factory_rejects_unknown_backends():
    with pytest.raises(SimulationError, match="unknown runtime"):
        create_runtime("quantum")


def test_factory_names_match_config_names():
    from repro.core.config import RUNTIME_NAMES as CONFIG_NAMES
    assert tuple(RUNTIME_NAMES) == tuple(CONFIG_NAMES)


def test_sleep_is_a_timeout_alias():
    env = create_runtime("virtual")
    ticks = []

    def proc():
        yield env.sleep(2.5)
        ticks.append(env.now)

    env.process(proc())
    env.run()
    assert ticks == [2.5]


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
def test_engine_defaults_to_the_virtual_backend():
    assert AortaEngine().env.backend_name == "virtual"


def test_engine_config_selects_the_realtime_backend():
    config = EngineConfig(runtime="realtime", time_scale=0.0)
    engine = AortaEngine(config=config)
    assert engine.env.backend_name == "realtime"
    assert engine.env.time_scale == 0.0


def test_explicit_runtime_wins_over_config():
    env = Environment()
    config = EngineConfig(runtime="realtime")
    assert AortaEngine(env, config=config).env is env


def test_config_rejects_unknown_runtime_and_negative_scale():
    with pytest.raises(AortaError, match="unknown runtime"):
        EngineConfig(runtime="asyncio")
    with pytest.raises(AortaError, match="time_scale"):
        EngineConfig(time_scale=-1.0)
