"""The round loops: cumulative budgets and the parallel barrier.

``run_lockstep``'s fleet-wide ``max_events`` semantics are pinned here
(it used to be a per-call watchdog, letting a runaway fleet process
``rounds x shards x max_events`` events before firing), alongside
fake-peer tests of ``run_parallel_rounds``: peer-order result
collection, budget threading, failure aggregation and propagation.
"""

from typing import List, Optional

import pytest

from repro.errors import SimulationError
from repro.runtime import (
    RoundBudgetError,
    RoundResult,
    VirtualRuntime,
    run_lockstep,
    run_parallel_rounds,
)


# ----------------------------------------------------------------------
# run_lockstep: the cumulative fleet-wide event budget
# ----------------------------------------------------------------------
def ticking_runtime(period: float = 1.0,
                    ticks: Optional[int] = None) -> VirtualRuntime:
    """A runtime with one recurring timer (1 event per period)."""
    runtime = VirtualRuntime()

    def clock(env):
        fired = 0
        while ticks is None or fired < ticks:
            yield env.timeout(period)
            fired += 1

    runtime.process(clock(runtime))
    return runtime


def test_lockstep_budget_is_cumulative_across_rounds():
    # One event per 1.0s round: per-call semantics would never trip a
    # budget of 5 (each round consumes 1 of a fresh 5); the cumulative
    # budget must fire before t=10.
    runtime = ticking_runtime(period=1.0)
    with pytest.raises(SimulationError,
                       match="fleet event budget exhausted"):
        run_lockstep([runtime], 10.0, quantum=1.0, max_events=5)


def test_lockstep_budget_is_shared_across_shards():
    # Two shards ticking in step: the fleet consumes 2 events per
    # round, so a budget of 7 dies mid-flight even though each shard
    # alone would fit.
    fleet = [ticking_runtime(period=1.0), ticking_runtime(period=1.0)]
    with pytest.raises(SimulationError,
                       match="fleet event budget exhausted"):
        run_lockstep(fleet, 10.0, quantum=1.0, max_events=7)


def test_lockstep_budget_error_carries_per_shard_diagnostics():
    fleet = [ticking_runtime(period=1.0), ticking_runtime(period=0.5)]
    with pytest.raises(SimulationError) as excinfo:
        run_lockstep(fleet, 10.0, quantum=1.0, max_events=4)
    message = str(excinfo.value)
    assert "max_events=4" in message
    assert "shard 0:" in message and "shard 1:" in message
    assert "pending=" in message


def test_lockstep_exact_budget_with_quiescent_fleet_succeeds():
    # Measure the workload's true event count, then grant exactly that
    # many: the budget only fires when due work remains, so consuming
    # the full allowance and quiescing is not an error.
    probe = ticking_runtime(period=1.0, ticks=3)
    run_lockstep([probe], 10.0, quantum=2.0)
    total = probe.events_processed

    exact = ticking_runtime(period=1.0, ticks=3)
    assert run_lockstep([exact], 10.0, quantum=2.0,
                        max_events=total) == 10.0
    assert exact.events_processed == total

    starved = ticking_runtime(period=1.0, ticks=3)
    with pytest.raises(SimulationError,
                       match="fleet event budget exhausted"):
        run_lockstep([starved], 10.0, quantum=2.0, max_events=total - 1)


# ----------------------------------------------------------------------
# run_parallel_rounds: fake peers
# ----------------------------------------------------------------------
class FakePeer:
    """A scripted RoundPeer advancing ``events_per_round`` per round."""

    def __init__(self, index: int, log: List[str],
                 events_per_round: int = 1,
                 fail_with: Optional[BaseException] = None,
                 fail_at_round: int = 1) -> None:
        self.index = index
        self.log = log
        self.events_per_round = events_per_round
        self.fail_with = fail_with
        self.fail_at_round = fail_at_round
        self.rounds = 0
        self.budgets: List[Optional[int]] = []
        self._now = 0.0
        self._deadline = 0.0

    def now(self) -> float:
        return self._now

    def begin_round(self, deadline: float,
                    max_events: Optional[int]) -> None:
        self.log.append(f"begin{self.index}")
        self.budgets.append(max_events)
        self._deadline = deadline

    def finish_round(self) -> RoundResult:
        self.log.append(f"finish{self.index}")
        self.rounds += 1
        if self.fail_with is not None and self.rounds >= self.fail_at_round:
            raise self.fail_with
        self._now = self._deadline
        return RoundResult(now=self._now, events=self.events_per_round,
                           busy_seconds=0.001, pending=1)


def test_parallel_rounds_broadcast_then_collect_in_peer_order():
    log: List[str] = []
    peers = [FakePeer(i, log) for i in range(3)]
    assert run_parallel_rounds(peers, 2.0, quantum=1.0) == 2.0
    # Every round submits to all peers before collecting from any, and
    # collection order is peer order regardless of completion order.
    assert log == ["begin0", "begin1", "begin2",
                   "finish0", "finish1", "finish2"] * 2
    assert all(peer.now() == 2.0 for peer in peers)


def test_parallel_rounds_thread_the_remaining_budget():
    log: List[str] = []
    peers = [FakePeer(i, log, events_per_round=3) for i in range(2)]
    run_parallel_rounds(peers, 3.0, quantum=1.0, max_events=100)
    # Each round consumes 6 fleet-wide; every peer of a round is handed
    # the full remaining allowance (concurrent rounds cannot thread a
    # sequentially decremented budget).
    assert peers[0].budgets == [100, 94, 88]
    assert peers[1].budgets == [100, 94, 88]


def test_parallel_rounds_aggregate_budget_exhaustion():
    log: List[str] = []
    peers = [
        FakePeer(0, log, fail_with=RoundBudgetError(
            "budget", now=0.5, events=7, pending=4)),
        FakePeer(1, log),
    ]
    with pytest.raises(SimulationError,
                       match="fleet event budget exhausted") as excinfo:
        run_parallel_rounds(peers, 5.0, quantum=1.0, max_events=7)
    message = str(excinfo.value)
    # The diagnostic covers both the exhausted shard and the healthy
    # one that finished its round.
    assert "shard 0: t=0.500000 pending=4" in message
    assert "shard 1: t=1.000000 pending=1" in message


def test_parallel_rounds_propagate_the_lowest_indexed_failure():
    log: List[str] = []
    first, second = ValueError("shard 1 broke"), ValueError("shard 2 broke")
    peers = [FakePeer(0, log),
             FakePeer(1, log, fail_with=first),
             FakePeer(2, log, fail_with=second)]
    with pytest.raises(ValueError, match="shard 1 broke"):
        run_parallel_rounds(peers, 5.0, quantum=1.0)
    # The barrier still drained every peer's reply before raising.
    assert log.count("finish2") == 1


def test_parallel_rounds_mixed_failures_prefer_the_real_error():
    # A budget error alongside a real failure is not fleet-wide budget
    # exhaustion: the real (lowest-indexed) failure wins.
    log: List[str] = []
    peers = [FakePeer(0, log, fail_with=ValueError("broken")),
             FakePeer(1, log, fail_with=RoundBudgetError("budget"))]
    with pytest.raises(ValueError, match="broken"):
        run_parallel_rounds(peers, 5.0, quantum=1.0, max_events=10)


def test_parallel_rounds_invoke_the_round_observer():
    observed: List[tuple] = []
    log: List[str] = []
    peers = [FakePeer(i, log, events_per_round=2) for i in range(2)]
    run_parallel_rounds(
        peers, 2.0, quantum=1.0,
        on_round=lambda deadline, wall, results:
        observed.append((deadline, len(results),
                         sum(result.events for result in results))))
    assert observed == [(1.0, 2, 4), (2.0, 2, 4)]


def test_parallel_rounds_validate_like_lockstep():
    log: List[str] = []
    with pytest.raises(SimulationError, match="quantum"):
        run_parallel_rounds([FakePeer(0, log)], 10.0, quantum=0.0)
    with pytest.raises(SimulationError, match="at least one"):
        run_parallel_rounds([], 10.0)
    ahead = FakePeer(0, log)
    ahead._now = 5.0
    with pytest.raises(SimulationError, match="already at"):
        run_parallel_rounds([ahead], 1.0)
