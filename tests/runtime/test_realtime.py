"""Unit tests of the RealtimeRuntime backend.

Pacing is exercised with injected fake wall-clock/sleep functions, so
these tests are fast and fully deterministic: the "wall clock" only
moves when the recorded sleep function advances it.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Interrupt
from repro.sim.realtime import RealtimeRuntime


class FakeWall:
    """A controllable monotonic clock whose sleep() advances it."""

    def __init__(self, start: float = 100.0, *, busy_per_event: float = 0.0):
        self.now = start
        self.sleeps: list[float] = []
        #: Wall time silently consumed between sleeps (models slow
        #: callbacks) — added on every clock read after the first.
        self.busy_per_event = busy_per_event

    def clock(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        assert seconds > 0, "runtime must not sleep non-positive spans"
        self.sleeps.append(seconds)
        self.now += seconds


def make_runtime(time_scale: float, wall: FakeWall, **kwargs):
    return RealtimeRuntime(time_scale=time_scale,
                           wall_clock=wall.clock,
                           wall_sleep=wall.sleep, **kwargs)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_negative_time_scale_rejected():
    with pytest.raises(SimulationError):
        RealtimeRuntime(time_scale=-0.5)


def test_negative_max_drift_rejected():
    with pytest.raises(SimulationError):
        RealtimeRuntime(max_drift=-1.0)


# ----------------------------------------------------------------------
# Timer ordering
# ----------------------------------------------------------------------
@pytest.mark.parametrize("time_scale", [0, 1.0])
def test_timers_fire_in_timestamp_order_not_creation_order(time_scale):
    wall = FakeWall()
    env = make_runtime(time_scale, wall)
    fired = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        fired.append((tag, env.now))

    # Created deliberately out of firing order.
    env.process(waiter(3.0, "late"))
    env.process(waiter(1.0, "early"))
    env.process(waiter(2.0, "middle"))
    env.run()
    assert fired == [("early", 1.0), ("middle", 2.0), ("late", 3.0)]


def test_equal_timestamps_keep_fifo_order():
    wall = FakeWall()
    env = make_runtime(1.0, wall)
    fired = []

    def waiter(tag):
        yield env.timeout(2.0)
        fired.append(tag)

    for tag in ("a", "b", "c"):
        env.process(waiter(tag))
    env.run()
    assert fired == ["a", "b", "c"]


# ----------------------------------------------------------------------
# Pacing
# ----------------------------------------------------------------------
def test_time_scale_zero_never_sleeps():
    wall = FakeWall()
    env = make_runtime(0, wall)

    def proc():
        yield env.timeout(5.0)
        yield env.timeout(5.0)

    env.process(proc())
    env.run()
    assert env.now == 10.0
    assert wall.sleeps == []


def test_sleeps_match_scaled_inter_event_gaps():
    wall = FakeWall()
    env = make_runtime(2.0, wall)

    def proc():
        yield env.timeout(1.0)
        yield env.timeout(3.0)

    env.process(proc())
    env.run()
    # Process bootstrap fires at t=0 (no sleep), then t=1 and t=4 under
    # scale 2.0: sleeps of 2 and 6 wall seconds.
    assert wall.sleeps == [pytest.approx(2.0), pytest.approx(6.0)]


def test_run_until_paces_to_the_deadline():
    wall = FakeWall()
    env = make_runtime(1.0, wall)

    def proc():
        yield env.timeout(1.0)

    env.process(proc())
    env.run(until=10.0)
    assert env.now == 10.0
    # One wall second to reach the timer, nine more to the deadline.
    assert sum(wall.sleeps) == pytest.approx(10.0)


def test_behind_schedule_runs_flat_out_and_records_drift():
    # Each clock read consumes 2 wall seconds (slow host): the runtime
    # must not sleep, must not raise (non-strict), and must record how
    # far behind it fell.
    wall = FakeWall()
    env = make_runtime(0.1, wall)

    def proc():
        for _ in range(3):
            yield env.timeout(1.0)

    env.process(proc())

    original_clock = wall.clock

    def busy_clock():
        wall.now += 2.0
        return original_clock()

    env._wall_clock = busy_clock
    env.run()
    assert env.now == 3.0
    assert wall.sleeps == []
    assert env.max_observed_drift > 0


def test_strict_mode_raises_when_drift_exceeds_budget():
    wall = FakeWall()
    env = make_runtime(0.1, wall, strict=True, max_drift=0.5)

    def proc():
        for _ in range(3):
            yield env.timeout(1.0)

    env.process(proc())

    original_clock = wall.clock

    def busy_clock():
        wall.now += 2.0
        return original_clock()

    env._wall_clock = busy_clock
    with pytest.raises(SimulationError, match="behind the wall clock"):
        env.run()


def test_resync_drops_the_backlog():
    wall = FakeWall()
    env = make_runtime(1.0, wall)

    def proc():
        yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert sum(wall.sleeps) == pytest.approx(1.0)
    # A long idle pause (the wall moves, the runtime does not) ...
    wall.now += 500.0
    env.resync()

    def later():
        yield env.timeout(1.0)

    env.process(later())
    env.run()
    # ... must not be replayed: only the new 1s gap is paced.
    assert sum(wall.sleeps) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_interrupt_cancels_a_pending_timer_wait():
    wall = FakeWall()
    env = make_runtime(0, wall)
    outcome = {}

    def sleeper():
        try:
            yield env.timeout(60.0)
            outcome["finished"] = env.now
        except Interrupt as interrupt:
            outcome["interrupted_at"] = env.now
            outcome["cause"] = interrupt.cause

    process = env.process(sleeper())

    def canceller():
        yield env.timeout(1.0)
        process.interrupt("redirect")

    env.process(canceller())
    env.run()
    assert outcome == {"interrupted_at": 1.0, "cause": "redirect"}
    # The cancelled 60s timer still sits in the queue but resumes
    # nobody; draining it must not reanimate the process.
    assert env.now == 60.0


def test_cancelled_timer_does_not_pace_after_quiescence():
    # At time_scale>0 the orphaned timer still paces the queue drain —
    # callers that care bound the run instead.
    wall = FakeWall()
    env = make_runtime(1.0, wall)
    outcome = {}

    def sleeper():
        try:
            yield env.timeout(60.0)
        except Interrupt:
            outcome["interrupted_at"] = env.now

    process = env.process(sleeper())

    def canceller():
        yield env.timeout(1.0)
        process.interrupt()

    env.process(canceller())
    env.run(until=2.0)
    assert outcome == {"interrupted_at": 1.0}
    assert sum(wall.sleeps) == pytest.approx(2.0)
