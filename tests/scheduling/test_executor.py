"""Cross-validation: kernel execution agrees with arithmetic replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    LerfaSrfeScheduler,
    ListScheduler,
    RandomScheduler,
    SrfaeScheduler,
    service_makespan,
    uniform_camera_workload,
)
from repro.scheduling.executor import execute_schedule


@pytest.mark.parametrize("factory", [
    LerfaSrfeScheduler, SrfaeScheduler, ListScheduler, RandomScheduler,
], ids=lambda f: f.name)
def test_kernel_and_replay_agree(factory):
    problem = uniform_camera_workload(15, 5, seed=11)
    schedule = factory(0).schedule(problem)
    replay = service_makespan(problem, schedule)
    executed = execute_schedule(problem, schedule)
    assert executed.makespan == pytest.approx(replay)


def test_completion_times_monotone_per_device():
    problem = uniform_camera_workload(12, 3, seed=2)
    schedule = SrfaeScheduler(0).schedule(problem)
    result = execute_schedule(problem, schedule)
    for device_id, queue in schedule.assignments.items():
        times = [result.completion_times[r] for r in queue]
        assert times == sorted(times)


def test_device_busy_accounting():
    problem = uniform_camera_workload(8, 2, seed=3)
    schedule = ListScheduler(0).schedule(problem)
    result = execute_schedule(problem, schedule)
    # Every device's busy time equals its completion (work from t=0,
    # no idling within a queue).
    for device_id, queue in schedule.assignments.items():
        if queue:
            assert result.device_busy[device_id] == pytest.approx(
                result.completion_times[queue[-1]])


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 10), m=st.integers(1, 4), seed=st.integers(0, 50))
def test_agreement_property(n, m, seed):
    problem = uniform_camera_workload(n, m, seed=seed)
    schedule = SrfaeScheduler(seed).schedule(problem)
    assert execute_schedule(problem, schedule).makespan == pytest.approx(
        service_makespan(problem, schedule))
