"""Unit tests for workload-balance and utilization metrics."""

import pytest

from repro.scheduling import (
    Problem,
    Schedule,
    SchedRequest,
    StaticCostModel,
    device_utilization,
    workload_balance,
)


def make_problem():
    costs = {("r1", "d1"): 2.0, ("r2", "d1"): 2.0,
             ("r1", "d2"): 2.0, ("r2", "d2"): 2.0}
    return Problem(
        requests=(SchedRequest("r1", ("d1", "d2")),
                  SchedRequest("r2", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )


def test_perfectly_balanced_schedule():
    problem = make_problem()
    schedule = Schedule("x", {"d1": ["r1"], "d2": ["r2"]})
    assert workload_balance(problem, schedule) == pytest.approx(0.0)
    assert device_utilization(problem, schedule) == {
        "d1": pytest.approx(1.0), "d2": pytest.approx(1.0)}


def test_lopsided_schedule():
    problem = make_problem()
    schedule = Schedule("x", {"d1": ["r1", "r2"], "d2": []})
    # Completions (4, 0): mean 2, std 2 -> CV = 1.
    assert workload_balance(problem, schedule) == pytest.approx(1.0)
    utilization = device_utilization(problem, schedule)
    assert utilization["d1"] == pytest.approx(1.0)
    assert utilization["d2"] == pytest.approx(0.0)


def test_empty_schedule():
    problem = Problem(requests=(), device_ids=("d1",),
                      cost_model=StaticCostModel({}))
    schedule = Schedule("x", {"d1": []})
    assert workload_balance(problem, schedule) == 0.0
    assert device_utilization(problem, schedule) == {"d1": 0.0}
