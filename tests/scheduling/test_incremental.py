"""Incremental warm-start scheduling: identity and splice guarantees.

Three properties carry the feature. (1) A first batch, a device-set
change, or an all-dirty batch runs the inner algorithm fresh — equal to
a cold scheduler's output. (2) An *unchanged* problem, under ANY dirty
signals, equals a full re-run bit-for-bit (signals are advisory; the
value-diff against the previous statuses is the correctness backstop).
(3) Under partial status changes the spliced schedule is feasible and
keeps every clean request on its previous device in its previous order.
"""

import dataclasses
import random
from typing import Any, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.scheduling import (
    CachingCostModel,
    IncrementalScheduler,
    LerfaSrfeScheduler,
    Problem,
    SchedRequest,
    SchedulingCostModel,
    SrfaeScheduler,
    default_fingerprint,
    uniform_camera_workload,
)


class LineModel(SchedulingCostModel):
    """1-D head positions: cost = |target - head| + 1, head moves.

    Deterministic and sequence-dependent, with statuses the test can
    perturb per device — the minimal model for dirty-set experiments.
    """

    cache_by_default = False
    deterministic = True

    def __init__(self, heads):
        self.heads = dict(heads)

    def initial_status(self, device_id: str) -> float:
        return self.heads[device_id]

    def estimate(self, request: SchedRequest, device_id: str,
                 status: Any) -> Tuple[float, Any]:
        target = float(request.payload)
        return abs(target - status) + 1.0, target


def line_problem(heads, targets, candidates=None):
    device_ids = tuple(heads)
    return Problem(
        requests=tuple(
            SchedRequest(request_id=f"r{i}",
                         candidates=(candidates or {}).get(f"r{i}",
                                                           device_ids),
                         payload=target)
            for i, target in enumerate(targets)),
        device_ids=device_ids,
        cost_model=LineModel(heads),
    )


HEADS = {"d1": 0.0, "d2": 50.0, "d3": -40.0}
TARGETS = (3.0, 55.0, -35.0, 10.0, 48.0, -50.0, 0.5, 60.0)


# ----------------------------------------------------------------------
# Identity guarantees
# ----------------------------------------------------------------------
def test_first_batch_equals_a_cold_full_run():
    problem = line_problem(HEADS, TARGETS)
    warm = IncrementalScheduler(SrfaeScheduler(0))
    cold = SrfaeScheduler(0)
    assert warm.schedule(problem).assignments == \
        cold.schedule(problem).assignments
    assert warm.stats.full_runs == 1
    assert warm.name == "SRFAE+warm"


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 14), m=st.integers(1, 4),
       seed=st.integers(0, 500),
       dirty=st.sets(st.integers(0, 3), max_size=4))
def test_unchanged_problem_equals_full_rerun_under_any_signals(
        n, m, seed, dirty):
    problem = uniform_camera_workload(n, m, seed=seed)
    warm = IncrementalScheduler(SrfaeScheduler(0))
    first = warm.schedule(problem)
    for index in dirty:
        warm.mark_dirty(problem.device_ids[index % m])
    second = warm.schedule(problem)
    reference = SrfaeScheduler(0).schedule(problem)
    assert first.assignments == reference.assignments
    assert second.assignments == reference.assignments
    assert warm.stats.full_runs == 1  # the second batch re-placed nothing
    assert warm.stats.reused_requests == n


def test_all_dirty_batch_equals_a_cold_full_run():
    warm = IncrementalScheduler(SrfaeScheduler(0))
    warm.schedule(line_problem(HEADS, TARGETS))
    moved = {"d1": 7.0, "d2": -3.0, "d3": 99.0}
    second = line_problem(moved, TARGETS)
    assert warm.schedule(second).assignments == \
        SrfaeScheduler(0).schedule(second).assignments
    assert warm.stats.dirty_devices == 3


def test_device_set_change_forces_a_full_run():
    warm = IncrementalScheduler(SrfaeScheduler(0))
    warm.schedule(line_problem(HEADS, TARGETS))
    grown = dict(HEADS, d4=100.0)
    second = line_problem(grown, TARGETS)
    assert warm.schedule(second).assignments == \
        SrfaeScheduler(0).schedule(second).assignments
    assert warm.stats.full_runs == 2


def test_duplicate_fingerprints_force_a_full_run():
    problem = line_problem(HEADS, (5.0, 5.0, 9.0))
    # Same candidates + payload under a content fingerprint: ambiguous
    # cross-batch identity, so the scheduler must not try to splice.
    warm = IncrementalScheduler(
        SrfaeScheduler(0),
        fingerprint=lambda request: request.payload)
    warm.schedule(problem)
    warm.schedule(problem)
    assert warm.stats.full_runs == 2


def test_reset_forgets_the_previous_batch():
    problem = line_problem(HEADS, TARGETS)
    warm = IncrementalScheduler(SrfaeScheduler(0))
    warm.schedule(problem)
    warm.reset()
    warm.schedule(problem)
    assert warm.stats.full_runs == 2


# ----------------------------------------------------------------------
# The splice under partial dirt
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 500),
       dirty=st.sets(st.sampled_from(("d1", "d2", "d3")), min_size=1,
                     max_size=2))
def test_partial_dirt_keeps_clean_queues_and_stays_feasible(seed, dirty):
    rng = random.Random(seed)
    targets = tuple(rng.uniform(-60, 60) for _ in range(10))
    problem = line_problem(HEADS, targets)
    warm = IncrementalScheduler(SrfaeScheduler(0))
    first = warm.schedule(problem)

    moved = {device_id: (head + 13.0 if device_id in dirty else head)
             for device_id, head in HEADS.items()}
    second_problem = line_problem(moved, targets)
    second = warm.schedule(second_problem)
    second.validate(second_problem)  # feasible: every request, once
    assert warm.stats.full_runs == 1
    for device_id in problem.device_ids:
        if device_id in dirty:
            continue
        kept = first.assignments[device_id]
        assert second.assignments[device_id][:len(kept)] == kept


def test_changed_requests_are_replaced_kept_ones_stay():
    targets = (3.0, 55.0, -35.0, 10.0)
    problem = line_problem(HEADS, targets)
    warm = IncrementalScheduler(SrfaeScheduler(0))
    first = warm.schedule(problem)

    # Same statuses; r1 changes payload, r4 is new, r0 disappears.
    second_problem = dataclasses.replace(
        problem,
        requests=(
            dataclasses.replace(problem.requests[1], payload=20.0),
            problem.requests[2],
            problem.requests[3],
            SchedRequest(request_id="r4",
                         candidates=problem.device_ids, payload=-10.0),
        ))
    second = warm.schedule(second_problem)
    second.validate(second_problem)
    assert warm.stats.full_runs == 1
    # The two untouched requests stay exactly where they were.
    for request_id in ("r2", "r3"):
        previous_device = first.device_of(request_id)
        assert second.device_of(request_id) == previous_device
    assert warm.stats.replaced_requests == len(targets) + 2


def test_candidate_set_change_is_a_new_fingerprint():
    problem = line_problem(HEADS, (5.0, 9.0))
    warm = IncrementalScheduler(SrfaeScheduler(0))
    warm.schedule(problem)
    narrowed = line_problem(HEADS, (5.0, 9.0),
                            candidates={"r1": ("d2",)})
    second = warm.schedule(narrowed)
    second.validate(narrowed)
    assert second.device_of("r1") == "d2"
    assert warm.stats.full_runs == 1


# ----------------------------------------------------------------------
# The shared cost oracle
# ----------------------------------------------------------------------
def test_shared_cache_carries_hits_across_batches():
    problem = line_problem(HEADS, TARGETS)
    cache = CachingCostModel(problem.cost_model, track_devices=True)
    warm = IncrementalScheduler(SrfaeScheduler(0), cost_cache=cache)
    warm.schedule(problem)
    primed = cache.misses
    # Unchanged batch: nothing is re-placed, so the oracle is not even
    # consulted — zero new misses and zero hits.
    warm.schedule(problem)
    assert cache.misses == primed
    assert cache.hits == 0
    # A new request forces a warm splice: the kept queues are re-walked
    # through the shared memo, so the prefix costs come back as hits.
    grown = dataclasses.replace(
        problem,
        requests=problem.requests + (
            SchedRequest(request_id="r99",
                         candidates=problem.device_ids, payload=-25.0),))
    warm.schedule(grown)
    assert cache.hits > 0
    assert warm.last_cache_stats == cache.stats()


def test_shared_cache_must_wrap_the_problems_model():
    problem = line_problem(HEADS, TARGETS)
    foreign = CachingCostModel(LineModel(HEADS))
    warm = IncrementalScheduler(SrfaeScheduler(0), cost_cache=foreign)
    with pytest.raises(SchedulingError, match="shared cost cache"):
        warm.schedule(problem)


def test_invalidate_device_keeps_the_shared_cache_honest():
    problem = line_problem(HEADS, TARGETS)
    cache = CachingCostModel(problem.cost_model, track_devices=True)
    warm = IncrementalScheduler(SrfaeScheduler(0), cost_cache=cache)
    warm.schedule(problem)
    before = cache.entries
    cache.invalidate_device("d1")
    assert cache.entries < before


# ----------------------------------------------------------------------
# Fingerprints and composition
# ----------------------------------------------------------------------
def test_default_fingerprint_covers_id_candidates_payload():
    a = SchedRequest("r1", ("d1", "d2"), payload=3.0)
    assert default_fingerprint(a) == default_fingerprint(
        SchedRequest("r1", ("d1", "d2"), payload=3.0))
    assert default_fingerprint(a) != default_fingerprint(
        SchedRequest("r1", ("d1",), payload=3.0))
    assert default_fingerprint(a) != default_fingerprint(
        SchedRequest("r1", ("d1", "d2"), payload=4.0))
    assert default_fingerprint(a) != default_fingerprint(
        SchedRequest("r2", ("d1", "d2"), payload=3.0))


def test_wraps_any_inner_algorithm():
    problem = line_problem(HEADS, TARGETS)
    warm = IncrementalScheduler(LerfaSrfeScheduler(7))
    first = warm.schedule(problem)
    assert warm.name == "LERFA+SRFE+warm"
    assert warm.seed == 7
    assert first.assignments == \
        LerfaSrfeScheduler(7).schedule(problem).assignments
    # rng reseeding: repeating the batch replays the inner shuffle.
    assert warm.schedule(problem).assignments == first.assignments
