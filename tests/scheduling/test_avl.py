"""Unit and property tests for the AVL tree backing SRFAE."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.scheduling.avl import AVLTree


def test_insert_and_pop_min_orders_keys():
    tree = AVLTree()
    for key in [5, 3, 8, 1, 9, 7]:
        tree.insert(key, f"v{key}")
    popped = []
    while tree:
        key, value = tree.pop_min()
        popped.append(key)
        assert value == f"v{key}"
    assert popped == [1, 3, 5, 7, 8, 9]


def test_duplicate_key_rejected():
    tree = AVLTree()
    tree.insert((1.0, 0), "a")
    with pytest.raises(SchedulingError, match="duplicate"):
        tree.insert((1.0, 0), "b")


def test_remove_returns_value():
    tree = AVLTree()
    tree.insert(2, "two")
    tree.insert(1, "one")
    assert tree.remove(2) == "two"
    assert len(tree) == 1
    assert 2 not in tree


def test_remove_missing_key_raises():
    tree = AVLTree()
    with pytest.raises(SchedulingError, match="not found"):
        tree.remove(42)


def test_pop_min_empty_raises():
    with pytest.raises(SchedulingError, match="empty"):
        AVLTree().pop_min()


def test_min_key_without_removal():
    tree = AVLTree()
    tree.insert(3, "c")
    tree.insert(1, "a")
    assert tree.min_key() == 1
    assert len(tree) == 2


def test_update_key_moves_node():
    tree = AVLTree()
    tree.insert((5.0, 1), "x")
    tree.insert((2.0, 2), "y")
    tree.update_key((5.0, 1), (1.0, 1))
    key, value = tree.pop_min()
    assert value == "x"
    assert key == (1.0, 1)


def test_update_key_same_key_is_noop():
    tree = AVLTree()
    tree.insert(1, "a")
    tree.update_key(1, 1)
    assert tree.min_key() == 1


def test_contains():
    tree = AVLTree()
    tree.insert(4, "d")
    assert 4 in tree
    assert 5 not in tree


def test_items_in_order():
    tree = AVLTree()
    for key in [4, 2, 6, 1, 3]:
        tree.insert(key, key)
    assert [key for key, _ in tree.items()] == [1, 2, 3, 4, 5][:4] + [6]


def test_invariants_hold_under_sequential_inserts():
    tree = AVLTree()
    for key in range(100):  # worst case for an unbalanced BST
        tree.insert(key, key)
        tree.check_invariants()
    # AVL keeps the tree logarithmic; a plain BST would have height 100.
    assert tree._root.height <= 9


@given(st.lists(st.integers(), unique=True))
def test_insert_all_then_drain_sorted(keys):
    tree = AVLTree()
    for key in keys:
        tree.insert(key, key)
    tree.check_invariants()
    drained = []
    while tree:
        drained.append(tree.pop_min()[0])
    assert drained == sorted(keys)


@given(st.lists(st.tuples(st.sampled_from("ird"), st.integers(0, 50)),
                max_size=200))
def test_random_operation_sequences_keep_invariants(operations):
    """Insert/remove/drain-min interleavings preserve AVL invariants."""
    tree = AVLTree()
    reference = set()
    for op, key in operations:
        if op == "i" and key not in reference:
            tree.insert(key, key)
            reference.add(key)
        elif op == "r" and key in reference:
            tree.remove(key)
            reference.discard(key)
        elif op == "d" and reference:
            popped, _ = tree.pop_min()
            assert popped == min(reference)
            reference.discard(popped)
        tree.check_invariants()
        assert len(tree) == len(reference)
    assert [key for key, _ in tree.items()] == sorted(reference)
