"""Tests for the exact solver and heuristic-vs-optimal gaps."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling import (
    LerfaSrfeScheduler,
    Problem,
    SchedRequest,
    SrfaeScheduler,
    StaticCostModel,
    optimal_schedule,
    service_makespan,
    uniform_camera_workload,
)


def test_optimal_on_transparent_instance():
    costs = {("r1", "d1"): 1.0, ("r1", "d2"): 10.0,
             ("r2", "d1"): 10.0, ("r2", "d2"): 1.0}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1", "d2")),
                  SchedRequest("r2", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    result = optimal_schedule(problem)
    assert result.makespan == pytest.approx(1.0)
    assert result.schedule.device_of("r1") == "d1"
    assert result.schedule.device_of("r2") == "d2"


def test_optimal_respects_eligibility():
    costs = {("r1", "d1"): 5.0, ("r2", "d1"): 5.0}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)),
                  SchedRequest("r2", ("d1",))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    result = optimal_schedule(problem)
    assert result.makespan == pytest.approx(10.0)


def test_optimal_exploits_sequencing():
    """With sequence-dependent costs, the order on one device matters."""
    problem = uniform_camera_workload(4, 1, seed=5)
    result = optimal_schedule(problem)
    # Any order is feasible; optimal must be <= the identity order.
    from repro.scheduling import Schedule
    identity = Schedule("identity", {
        "cam1": [r.request_id for r in problem.requests]})
    assert result.makespan <= service_makespan(problem, identity) + 1e-9


def test_optimal_lower_bounds_heuristics():
    for seed in range(5):
        problem = uniform_camera_workload(6, 3, seed=seed)
        optimal = optimal_schedule(problem)
        for scheduler in (LerfaSrfeScheduler(seed), SrfaeScheduler(seed)):
            heuristic = service_makespan(problem,
                                         scheduler.schedule(problem))
            assert heuristic >= optimal.makespan - 1e-9


def test_heuristics_near_optimal_on_small_instances():
    """Section 6.3: proposed algorithms within ~1 s of the optimum."""
    gaps = []
    for seed in range(5):
        problem = uniform_camera_workload(6, 3, seed=seed)
        optimal = optimal_schedule(problem)
        heuristic = service_makespan(
            problem, SrfaeScheduler(seed).schedule(problem))
        gaps.append(heuristic - optimal.makespan)
    assert sum(gaps) / len(gaps) < 1.5


def test_instance_size_guard():
    problem = uniform_camera_workload(11, 2, seed=0)
    with pytest.raises(SchedulingError, match="at most"):
        optimal_schedule(problem)


def test_explored_counter_positive():
    problem = uniform_camera_workload(4, 2, seed=0)
    result = optimal_schedule(problem)
    assert result.assignments_explored >= 1
    assert result.solve_seconds >= 0
