"""Vectorized cost kernels: bit-equality with the scalar oracle.

The load-bearing property is **byte-identity**: with ``vectorize=True``
every scheduler must produce exactly the schedule the scalar walk
produces — same assignments, same queue orders, same tie-breaks — on
every problem. Anything weaker would silently change the paper's
reproduced figures when the fast path is switched on. The kernels' own
contract (a column is element-wise bit-equal to scalar ``estimate``) is
what makes that identity provable, so it is property-tested directly
against both cost oracles: the synthetic camera model and the engine
cost model's block entry points.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PanTiltZoomCamera, Point
from repro.actions.registry import ActionRegistry
from repro.actions.builtins import install_builtin_actions
from repro.cost.model import CostModel
from repro.devices.camera import HeadPosition
from repro.errors import ProfileError, SchedulingError
from repro.profiles.defaults import (
    camera_cost_table,
    phone_cost_table,
    sensor_cost_table,
)
from repro.runtime import create_runtime
from repro.scheduling import (
    HAVE_NUMPY,
    BlockModelKernel,
    CachingCostModel,
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SAParameters,
    SchedRequest,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
    StaticCostModel,
    skewed_camera_workload,
    uniform_camera_workload,
)
from repro.scheduling import vector_cost
from repro.scheduling.vector_cost import build_kernel, masked_argmin

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")

TINY_SA = SAParameters(moves_per_temperature_per_request=4,
                       max_evaluations=400)

SCHEDULER_FACTORIES = (
    lambda vec: SrfaeScheduler(0, vectorize=vec),
    lambda vec: LerfaSrfeScheduler(0, vectorize=vec),
    lambda vec: ListScheduler(0, vectorize=vec),
    lambda vec: SimulatedAnnealingScheduler(0, parameters=TINY_SA,
                                            vectorize=vec),
    lambda vec: RandomScheduler(0, vectorize=vec),
)


# ----------------------------------------------------------------------
# The optional-dependency gate
# ----------------------------------------------------------------------
def test_vectorize_without_numpy_is_a_clear_error(monkeypatch):
    monkeypatch.setattr(vector_cost, "HAVE_NUMPY", False)
    with pytest.raises(SchedulingError, match="repro\\[fast\\]"):
        SrfaeScheduler(0, vectorize=True)


def test_camera_model_declines_kernel_without_numpy(monkeypatch):
    monkeypatch.setattr(vector_cost, "HAVE_NUMPY", False)
    problem = uniform_camera_workload(4, 2, seed=0)
    assert build_kernel(problem) is None


def test_vectorize_defaults_off():
    assert SrfaeScheduler(0).vectorize is False


# ----------------------------------------------------------------------
# masked_argmin: first occurrence wins, like a scalar strict-min scan
# ----------------------------------------------------------------------
@needs_numpy
def test_masked_argmin_first_occurrence_and_masking():
    import numpy
    costs = numpy.array([3.0, 1.0, 1.0, 2.0])
    mask = numpy.array([False, False, False, False])
    assert masked_argmin(costs, mask) == 1
    assert masked_argmin(costs, numpy.array([False, True, False, False])) == 2
    assert masked_argmin(costs, numpy.ones(4, dtype=bool)) is None


# ----------------------------------------------------------------------
# Camera kernel: columns bit-equal to the scalar estimate walk
# ----------------------------------------------------------------------
@needs_numpy
@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 20), m=st.integers(1, 5),
       seed=st.integers(0, 500), status_pick=st.integers(0, 10 ** 6))
def test_camera_kernel_columns_bit_equal(n, m, seed, status_pick):
    problem = uniform_camera_workload(n, m, seed=seed)
    model = problem.cost_model
    kernel = build_kernel(problem)
    assert kernel is not None
    for device_id in problem.device_ids:
        # Both the initial pose and an arbitrary mid-sequence pose (any
        # request's target is a reachable post-status).
        statuses = [model.initial_status(device_id),
                    problem.requests[status_pick % n].payload]
        for status in statuses:
            column = kernel.column(device_id, status)
            for i, request in enumerate(problem.requests):
                seconds, post = model.estimate(request, device_id, status)
                assert column[i] == seconds  # bit-equal, not approx
                assert kernel.post_status(i, device_id) == post


@needs_numpy
def test_camera_kernel_index_subsets():
    import numpy
    problem = uniform_camera_workload(12, 3, seed=7)
    kernel = build_kernel(problem)
    device_id = problem.device_ids[0]
    status = problem.cost_model.initial_status(device_id)
    full = kernel.column(device_id, status)
    indexes = numpy.array([0, 5, 11, 5], dtype=numpy.intp)
    subset = kernel.column(device_id, status, indexes)
    assert list(subset) == [full[0], full[5], full[11], full[5]]


@needs_numpy
def test_noisy_estimator_declines_the_kernel():
    noisy = uniform_camera_workload(6, 2, seed=0, estimate_noise=0.1)
    assert build_kernel(noisy) is None


@needs_numpy
def test_build_kernel_unwraps_the_memo_cache():
    problem = uniform_camera_workload(6, 2, seed=0)
    wrapped = dataclasses.replace(
        problem, cost_model=CachingCostModel(problem.cost_model))
    assert build_kernel(wrapped) is not None


def test_static_model_has_no_kernel():
    costs = {("r1", "d1"): 2.0, ("r2", "d1"): 1.0}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)), SchedRequest("r2", ("d1",))),
        device_ids=("d1",), cost_model=StaticCostModel(costs))
    assert build_kernel(problem) is None
    if HAVE_NUMPY:
        # vectorize=True silently keeps the scalar path for such models.
        vec = SrfaeScheduler(0, vectorize=True).schedule(problem)
        ref = SrfaeScheduler(0).schedule(problem)
        assert vec.assignments == ref.assignments


# ----------------------------------------------------------------------
# Byte-identity: vectorize on == off, all five schedulers
# ----------------------------------------------------------------------
@needs_numpy
@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 16), m=st.integers(1, 5),
       seed=st.integers(0, 1000))
def test_all_schedulers_identical_with_vectorize_on_and_off(n, m, seed):
    problem = uniform_camera_workload(n, m, seed=seed)
    for factory in SCHEDULER_FACTORIES:
        vectorized = factory(True).schedule(problem)
        scalar = factory(False).schedule(problem)
        assert vectorized.assignments == scalar.assignments


@needs_numpy
@settings(max_examples=10, deadline=None)
@given(n=st.integers(4, 16), m=st.integers(2, 5),
       skewness=st.sampled_from((0.2, 0.5, 0.8)),
       seed=st.integers(0, 500))
def test_skewed_eligibility_identical_with_vectorize(n, m, skewness, seed):
    problem = skewed_camera_workload(n, m, skewness, seed=seed)
    for factory in SCHEDULER_FACTORIES:
        vectorized = factory(True).schedule(problem)
        scalar = factory(False).schedule(problem)
        assert vectorized.assignments == scalar.assignments


@needs_numpy
def test_duplicate_targets_force_ties_identically():
    """All-equal costs make every argmin a tie: the serial/epoch order
    of the vectorized heap must reproduce the scalar tie-breaks."""
    base = uniform_camera_workload(8, 4, seed=3)
    shared = base.requests[0].payload
    problem = dataclasses.replace(base, requests=tuple(
        SchedRequest(request_id=r.request_id, candidates=r.candidates,
                     payload=shared)
        for r in base.requests))
    for factory in SCHEDULER_FACTORIES:
        vectorized = factory(True).schedule(problem)
        scalar = factory(False).schedule(problem)
        assert vectorized.assignments == scalar.assignments


# ----------------------------------------------------------------------
# The engine cost model's block entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def photo_lab():
    env = create_runtime("virtual")
    cost_model = CostModel()
    for table in (camera_cost_table(), sensor_cost_table(),
                  phone_cost_table()):
        cost_model.register_cost_table(table)
    registry = ActionRegistry()
    install_builtin_actions(registry, cost_model)
    cameras = {
        f"cam{i + 1}": PanTiltZoomCamera(
            env, f"cam{i + 1}", Point(25.0 * i, 0.0), facing=0.0,
            view_half_angle=170.0, view_range=1000.0)
        for i in range(3)}
    return cost_model, registry.get("photo"), cameras


@needs_numpy
@settings(max_examples=25, deadline=None)
@given(coords=st.lists(
    st.tuples(st.floats(5.0, 60.0), st.floats(-25.0, 25.0)),
    min_size=1, max_size=12),
    pan=st.floats(-80.0, 80.0), tilt=st.floats(-30.0, 10.0),
    zoom=st.floats(1.0, 9.0))
def test_block_estimates_bit_equal_to_scalar(photo_lab, coords, pan,
                                             tilt, zoom):
    cost_model, photo, cameras = photo_lab
    args_list = [{"target": Point(x, y), "directory": "photos"}
                 for x, y in coords]
    status = {"pan": pan, "tilt": tilt, "zoom": zoom}
    for device in cameras.values():
        prepared = cost_model.prepare_block(photo.name, device, args_list)
        block = cost_model.estimate_block(photo.name, device, prepared,
                                          status)
        for i, args in enumerate(args_list):
            scalar = cost_model.estimate(photo.name, device, args,
                                         status=status)
            assert block.seconds[i] == scalar.seconds
            for name, quantity in scalar.quantities.items():
                assert block.quantities[name][i] == quantity
            post = cost_model.block_post_status(photo.name, device,
                                                prepared, i)
            assert post == scalar.post_status


@needs_numpy
def test_block_model_kernel_subsets_and_posts(photo_lab):
    import numpy
    cost_model, photo, cameras = photo_lab
    args_list = [{"target": Point(10.0 + 7 * i, 4.0), "directory": "p"}
                 for i in range(6)]
    kernel = BlockModelKernel(cost_model, photo.name, cameras, args_list)
    device_id = next(iter(cameras))
    status = cameras[device_id].physical_status()
    full = kernel.column(device_id, status)
    indexes = numpy.array([4, 1, 1], dtype=numpy.intp)
    assert list(kernel.column(device_id, status, indexes)) == [
        full[4], full[1], full[1]]
    scalar = cost_model.estimate(photo.name, cameras[device_id],
                                 args_list[2], status=status)
    assert kernel.post_status(2, device_id) == scalar.post_status


@needs_numpy
def test_unregistered_block_resolver_is_a_profile_error(photo_lab):
    cost_model, photo, cameras = photo_lab
    device = next(iter(cameras.values()))
    with pytest.raises(ProfileError, match="block resolver"):
        cost_model.prepare_block("no-such-action", device, [])


# ----------------------------------------------------------------------
# CachingCostModel: columns and per-device invalidation
# ----------------------------------------------------------------------
def test_estimate_column_fills_and_hits_the_memo():
    problem = uniform_camera_workload(8, 2, seed=1)
    cache = CachingCostModel(problem.cost_model)
    device_id = problem.device_ids[0]
    status = cache.initial_status(device_id)
    column = cache.estimate_column(list(problem.requests), device_id,
                                   status)
    assert (cache.hits, cache.misses) == (0, 8)
    again = cache.estimate_column(list(problem.requests), device_id,
                                  status)
    assert again == column
    assert (cache.hits, cache.misses) == (8, 8)
    for pair, request in zip(column, problem.requests):
        assert pair == problem.cost_model.estimate(request, device_id,
                                                   status)


def test_invalidate_device_requires_tracking():
    problem = uniform_camera_workload(4, 2, seed=0)
    cache = CachingCostModel(problem.cost_model)
    with pytest.raises(SchedulingError, match="track_devices"):
        cache.invalidate_device(problem.device_ids[0])


def test_invalidate_device_drops_only_that_device():
    problem = uniform_camera_workload(6, 2, seed=2)
    cache = CachingCostModel(problem.cost_model, track_devices=True)
    d1, d2 = problem.device_ids
    for device_id in (d1, d2):
        cache.estimate_column(list(problem.requests), device_id,
                              cache.initial_status(device_id))
    assert cache.entries == 12
    cache.invalidate_device(d1)
    assert cache.entries == 6
    cache.estimate_column(list(problem.requests), d2,
                          cache.initial_status(d2))
    assert cache.hits == 6  # d2's entries survived
    cache.invalidate_device("never-seen")  # absent device: no-op


def test_cache_forwards_initial_workload():
    problem = uniform_camera_workload(4, 2, seed=0)
    cache = CachingCostModel(problem.cost_model)
    device_id = problem.device_ids[0]
    assert cache.initial_workload(device_id) == \
        problem.cost_model.initial_workload(device_id)
