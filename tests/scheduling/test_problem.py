"""Unit tests for problem instances and cost models."""

import pytest

from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.scheduling import Problem, SchedRequest, StaticCostModel


def small_problem():
    costs = {("r1", "d1"): 1.0, ("r1", "d2"): 2.0,
             ("r2", "d1"): 3.0, ("r2", "d2"): 1.0}
    return Problem(
        requests=(SchedRequest("r1", ("d1", "d2")),
                  SchedRequest("r2", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )


def test_counts():
    problem = small_problem()
    assert problem.n_requests == 2
    assert problem.n_devices == 2


def test_request_lookup():
    problem = small_problem()
    assert problem.request("r1").request_id == "r1"
    with pytest.raises(SchedulingError, match="unknown request"):
        problem.request("ghost")


def test_eligible_requests():
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)),
                  SchedRequest("r2", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel({("r1", "d1"): 1, ("r2", "d1"): 1,
                                    ("r2", "d2"): 1}),
    )
    assert [r.request_id for r in problem.eligible_requests("d2")] == ["r2"]


def test_empty_candidates_rejected():
    with pytest.raises(InfeasibleScheduleError, match="no candidate"):
        SchedRequest("r1", ())


def test_duplicate_candidates_rejected():
    with pytest.raises(SchedulingError, match="twice"):
        SchedRequest("r1", ("d1", "d1"))


def test_duplicate_request_ids_rejected():
    with pytest.raises(SchedulingError, match="duplicate request"):
        Problem(
            requests=(SchedRequest("r1", ("d1",)),
                      SchedRequest("r1", ("d1",))),
            device_ids=("d1",),
            cost_model=StaticCostModel({}),
        )


def test_unknown_candidate_device_rejected():
    with pytest.raises(SchedulingError, match="unknown\\s+devices"):
        Problem(
            requests=(SchedRequest("r1", ("ghost",)),),
            device_ids=("d1",),
            cost_model=StaticCostModel({}),
        )


def test_static_cost_model_lookup():
    model = StaticCostModel({("r1", "d1"): 2.5})
    request = SchedRequest("r1", ("d1",))
    assert model.estimate(request, "d1", None) == (2.5, None)
    assert model.actual(request, "d1", None) == (2.5, None)
    with pytest.raises(SchedulingError, match="no cost defined"):
        model.estimate(request, "d2", None)


def test_static_cost_model_rejects_negative():
    with pytest.raises(SchedulingError, match="negative"):
        StaticCostModel({("r1", "d1"): -1.0})
