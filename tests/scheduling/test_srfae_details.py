"""Algorithm-2-specific behaviour: key updates, accumulation, queues."""

import pytest

from repro.devices.camera import HeadPosition
from repro.errors import SchedulingError
from repro.scheduling import (
    Problem,
    SchedRequest,
    SrfaeScheduler,
    StaticCostModel,
    service_makespan,
)
from repro.scheduling.workload import CameraStatusCostModel


def test_globally_shortest_pair_goes_first():
    costs = {("slow", "d1"): 5.0, ("slow", "d2"): 4.0,
             ("quick", "d1"): 0.5, ("quick", "d2"): 2.0}
    problem = Problem(
        requests=(SchedRequest("slow", ("d1", "d2")),
                  SchedRequest("quick", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    schedule = SrfaeScheduler(0).schedule(problem)
    # quick/d1 (0.5) is the global minimum pair -> quick lands on d1
    # first; slow then compares d1 (0.5 + 5.0) vs d2 (4.0) -> d2.
    assert schedule.assignments["d1"] == ["quick"]
    assert schedule.assignments["d2"] == ["slow"]


def test_accumulated_workload_reflected_in_keys():
    """After d1 takes one request, its remaining keys include the
    accumulated completion, steering later requests elsewhere."""
    costs = {("r1", "d1"): 1.0,
             ("r2", "d1"): 1.2, ("r2", "d2"): 2.0,
             ("r3", "d1"): 1.4, ("r3", "d2"): 2.2}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)),
                  SchedRequest("r2", ("d1", "d2")),
                  SchedRequest("r3", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    schedule = SrfaeScheduler(0).schedule(problem)
    # r1 on d1 (1.0). r2: d1 completes at 2.2, d2 at 2.0 -> d2.
    # r3: d1 completes at 2.4, d2 at 2.0+2.2=4.2 -> d1.
    assert schedule.assignments["d1"] == ["r1", "r3"]
    assert schedule.assignments["d2"] == ["r2"]


def test_status_rekeying_after_assignment():
    """Keys are recomputed from the device's *new* head pose."""
    model = CameraStatusCostModel({"d1": HeadPosition(pan=0)})
    near = SchedRequest("near", ("d1",), payload=HeadPosition(pan=10))
    cluster = SchedRequest("cluster", ("d1",),
                           payload=HeadPosition(pan=15))
    problem = Problem(requests=(near, cluster), device_ids=("d1",),
                      cost_model=model)
    schedule = SrfaeScheduler(0).schedule(problem)
    # near (10 deg) first; cluster is then only 5 deg away.
    assert schedule.assignments["d1"] == ["near", "cluster"]
    makespan = service_makespan(problem, schedule)
    # 0.36*2 + (10 + 5)/68 degrees of panning.
    assert makespan == pytest.approx(0.72 + 15 / 68)


def test_all_structures_produce_identical_schedules():
    from repro.scheduling import uniform_camera_workload
    for seed in range(3):
        problem = uniform_camera_workload(15, 5, seed=seed)
        heap = SrfaeScheduler(seed, structure="heap").schedule(problem)
        avl = SrfaeScheduler(seed, structure="avl").schedule(problem)
        flat = SrfaeScheduler(seed, structure="scan").schedule(problem)
        assert heap.assignments == avl.assignments
        assert avl.assignments == flat.assignments


def test_use_avl_legacy_flag_maps_to_structures():
    assert SrfaeScheduler(0, use_avl=True).structure == "avl"
    assert SrfaeScheduler(0, use_avl=False).structure == "scan"
    with pytest.raises(SchedulingError):
        SrfaeScheduler(0, structure="btree")


def test_single_pair_problem():
    costs = {("only", "d1"): 2.0}
    problem = Problem(requests=(SchedRequest("only", ("d1",)),),
                      device_ids=("d1",), cost_model=StaticCostModel(costs))
    schedule = SrfaeScheduler(0).schedule(problem)
    assert schedule.assignments["d1"] == ["only"]
