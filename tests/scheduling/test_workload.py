"""Unit tests for the synthetic workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.devices.camera import HeadPosition
from repro.scheduling import (
    SchedRequest,
    skewed_camera_workload,
    uniform_camera_workload,
)
from repro.scheduling.workload import CameraStatusCostModel


def test_uniform_workload_shape():
    problem = uniform_camera_workload(20, 10, seed=0)
    assert problem.n_requests == 20
    assert problem.n_devices == 10
    for request in problem.requests:
        assert set(request.candidates) == set(problem.device_ids)


def test_uniform_workload_costs_in_paper_interval():
    """Every (request, device, initial status) cost lies in [0.36, 5.36]."""
    problem = uniform_camera_workload(30, 10, seed=1)
    statuses = problem.initial_statuses()
    for request in problem.requests:
        for device_id in request.candidates:
            seconds, _ = problem.cost_model.estimate(
                request, device_id, statuses[device_id])
            assert 0.36 <= seconds <= 5.36


def test_workload_is_deterministic_per_seed():
    a = uniform_camera_workload(10, 4, seed=9)
    b = uniform_camera_workload(10, 4, seed=9)
    assert [r.payload for r in a.requests] == [r.payload for r in b.requests]
    c = uniform_camera_workload(10, 4, seed=10)
    assert [r.payload for r in a.requests] != [r.payload for r in c.requests]


def test_skewed_workload_candidate_structure():
    problem = skewed_camera_workload(20, 10, skewness=0.3, seed=0)
    full = [r for r in problem.requests if len(r.candidates) == 10]
    restricted = [r for r in problem.requests if len(r.candidates) == 3]
    assert len(full) == 10
    assert len(restricted) == 10


def test_skewness_bounds_validated():
    with pytest.raises(SchedulingError, match="skewness"):
        skewed_camera_workload(10, 10, skewness=0.0)
    with pytest.raises(SchedulingError, match="skewness"):
        skewed_camera_workload(10, 10, skewness=1.5)


def test_workload_size_validated():
    with pytest.raises(SchedulingError, match="at least one"):
        uniform_camera_workload(0, 5)


def test_cost_model_post_status_is_target():
    model = CameraStatusCostModel({"d1": HeadPosition()})
    target = HeadPosition(pan=90, tilt=10, zoom=2)
    request = SchedRequest("r1", ("d1",), payload=target)
    _, post = model.estimate(request, "d1", HeadPosition())
    assert post == target


def test_cost_model_unknown_device_rejected():
    model = CameraStatusCostModel({"d1": HeadPosition()})
    with pytest.raises(SchedulingError, match="no initial head"):
        model.initial_status("ghost")


def test_estimate_noise_perturbs_estimates_not_actuals():
    model = CameraStatusCostModel({"d1": HeadPosition()},
                                  estimate_noise=0.2, noise_seed=1)
    target = HeadPosition(pan=90)
    request = SchedRequest("r1", ("d1",), payload=target)
    actual, _ = model.actual(request, "d1", HeadPosition())
    estimates = {model.estimate(request, "d1", HeadPosition())[0]
                 for _ in range(5)}
    assert len(estimates) > 1
    assert all(abs(e - actual) / actual <= 0.2 + 1e-9 for e in estimates)


def test_negative_noise_rejected():
    with pytest.raises(SchedulingError, match="estimate_noise"):
        CameraStatusCostModel({"d1": HeadPosition()}, estimate_noise=-0.1)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 30), m=st.integers(1, 10), seed=st.integers(0, 999))
def test_uniform_workload_always_valid(n, m, seed):
    problem = uniform_camera_workload(n, m, seed=seed)
    statuses = problem.initial_statuses()
    for request in problem.requests:
        seconds, post = problem.cost_model.estimate(
            request, request.candidates[0], statuses[request.candidates[0]])
        assert 0.36 <= seconds <= 5.36
        assert isinstance(post, HeadPosition)
