"""The memoizing cost oracle: keying, transparency, incremental SA.

The load-bearing property here is *observational transparency*: with a
deterministic inner model, every scheduler must produce byte-identical
schedules with the cache on and off, and SA's incremental evaluator
must agree bit-for-bit with a full re-walk — otherwise the perf work
would silently change the paper's reproduced figures.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.scheduling import (
    CachingCostModel,
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SAParameters,
    SchedRequest,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
    StaticCostModel,
    freeze_status,
    uniform_camera_workload,
)
from repro.scheduling.simulated_annealing import IncrementalMakespan

TINY_SA = SAParameters(moves_per_temperature_per_request=4,
                       max_evaluations=400)

SCHEDULER_FACTORIES = (
    lambda cache: LerfaSrfeScheduler(0, cost_cache=cache),
    lambda cache: SrfaeScheduler(0, cost_cache=cache),
    lambda cache: ListScheduler(0, cost_cache=cache),
    lambda cache: SimulatedAnnealingScheduler(0, parameters=TINY_SA,
                                              cost_cache=cache),
    lambda cache: RandomScheduler(0, cost_cache=cache),
)


# ----------------------------------------------------------------------
# freeze_status keying
# ----------------------------------------------------------------------
def test_freeze_status_dicts_are_value_keyed():
    a = freeze_status({"pan": 10.0, "tilt": -5.0})
    b = freeze_status({"tilt": -5.0, "pan": 10.0})  # other insert order
    assert a == b
    assert hash(a) == hash(b)
    assert freeze_status({"pan": 10.0, "tilt": 0.0}) != a


def test_freeze_status_nested_structures():
    status = {"head": {"pan": 1.0, "tilt": 2.0}, "queue": [1, 2],
              "flags": {"busy"}}
    frozen = freeze_status(status)
    hash(frozen)
    assert frozen == freeze_status(
        {"queue": [1, 2], "flags": {"busy"}, "head": {"tilt": 2.0, "pan": 1.0}})


def test_freeze_status_passes_through_hashables():
    assert freeze_status(3.5) == 3.5
    assert freeze_status("idle") == "idle"
    assert freeze_status(None) is None


def test_freeze_status_rejects_unhashable_objects():
    class Opaque:
        __hash__ = None

    with pytest.raises(SchedulingError):
        freeze_status(Opaque())


# ----------------------------------------------------------------------
# CachingCostModel unit behaviour
# ----------------------------------------------------------------------
def _static_problem():
    costs = {("r1", "d1"): 2.0, ("r1", "d2"): 3.0,
             ("r2", "d1"): 1.0, ("r2", "d2"): 4.0}
    return Problem(
        requests=(SchedRequest("r1", ("d1", "d2")),
                  SchedRequest("r2", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )


def test_cache_counts_hits_and_misses():
    problem = _static_problem()
    cache = CachingCostModel(problem.cost_model)
    request = problem.requests[0]
    status = cache.initial_status("d1")
    first = cache.estimate(request, "d1", status)
    second = cache.estimate(request, "d1", status)
    assert first == second
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.entries == 1
    stats = cache.stats()
    assert stats["hit_rate"] == pytest.approx(0.5)
    cache.clear()
    assert cache.entries == 0
    assert cache.stats()["hits"] == 0


def test_cache_accepts_dict_statuses():
    problem = _static_problem()
    cache = CachingCostModel(problem.cost_model)
    request = problem.requests[0]
    cache.estimate(request, "d1", {"pan": 0.0, "tilt": 1.0})
    cache.estimate(request, "d1", {"tilt": 1.0, "pan": 0.0})
    assert (cache.hits, cache.misses) == (1, 1)


def test_cache_payload_identity_guard():
    """Same request id, different payload object: a miss, not a lie."""
    problem = _static_problem()
    cache = CachingCostModel(problem.cost_model)
    status = cache.initial_status("d1")
    cache.estimate(SchedRequest("r1", ("d1",), payload=("batch", 1)),
                   "d1", status)
    cache.estimate(SchedRequest("r1", ("d1",), payload=("batch", 2)),
                   "d1", status)
    assert cache.hits == 0
    assert cache.misses == 2


def test_cache_refuses_nesting_and_nondeterminism():
    problem = _static_problem()
    cache = CachingCostModel(problem.cost_model)
    with pytest.raises(SchedulingError):
        CachingCostModel(cache)
    noisy = uniform_camera_workload(4, 2, seed=0, estimate_noise=0.1)
    assert not noisy.cost_model.deterministic
    with pytest.raises(SchedulingError):
        CachingCostModel(noisy.cost_model)


def test_auto_policy_follows_the_models_hint():
    """"auto" caches only models that opt in via cache_by_default."""
    cheap = uniform_camera_workload(6, 2, seed=0)
    assert not cheap.cost_model.cache_by_default
    scheduler = LerfaSrfeScheduler(0)  # default cost_cache="auto"
    scheduler.schedule(cheap)
    assert scheduler.last_cache_stats is None

    class OptIn(StaticCostModel):
        cache_by_default = True

    costs = {("r1", "d1"): 2.0, ("r2", "d1"): 1.0}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)), SchedRequest("r2", ("d1",))),
        device_ids=("d1",), cost_model=OptIn(costs))
    scheduler = LerfaSrfeScheduler(0)
    scheduler.schedule(problem)
    assert scheduler.last_cache_stats is not None

    forced = LerfaSrfeScheduler(0, cost_cache=True)
    forced.schedule(cheap)
    assert forced.last_cache_stats is not None


def test_schedulers_skip_caching_noisy_models():
    noisy = uniform_camera_workload(6, 2, seed=0, estimate_noise=0.1)
    scheduler = LerfaSrfeScheduler(0, cost_cache=True)
    scheduler.schedule(noisy)
    assert scheduler.last_cache_stats is None


def test_shared_cache_must_wrap_the_problems_model():
    problem = _static_problem()
    other = _static_problem()
    shared = CachingCostModel(other.cost_model)
    with pytest.raises(SchedulingError):
        LerfaSrfeScheduler(0, cost_cache=shared).schedule(problem)


def test_shared_cache_warm_run_hits_everything():
    problem = uniform_camera_workload(12, 4, seed=3)
    shared = CachingCostModel(problem.cost_model)
    SrfaeScheduler(0, cost_cache=shared).schedule(problem)
    primed = shared.stats()
    scheduler = SrfaeScheduler(0, cost_cache=shared)
    warm = scheduler.schedule(problem)
    assert shared.misses == primed["misses"]  # zero new misses
    reference = SrfaeScheduler(0, cost_cache=False).schedule(problem)
    assert warm.assignments == reference.assignments


# ----------------------------------------------------------------------
# Observational transparency: cache on == cache off, all five
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 14), m=st.integers(1, 5),
       seed=st.integers(0, 1000))
def test_all_schedulers_identical_with_cache_on_and_off(n, m, seed):
    problem = uniform_camera_workload(n, m, seed=seed)
    for factory in SCHEDULER_FACTORIES:
        cached = factory(True).schedule(problem)
        uncached = factory(False).schedule(problem)
        assert cached.assignments == uncached.assignments


# ----------------------------------------------------------------------
# SA incremental evaluator == full re-walk
# ----------------------------------------------------------------------
def _full_completions(problem, solution):
    scheduler = SimulatedAnnealingScheduler(0)
    return {device_id: scheduler._device_completion(problem, device_id,
                                                    queue)
            for device_id, queue in solution.items()}


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 12), m=st.integers(2, 4),
       seed=st.integers(0, 500), moves=st.integers(1, 40))
def test_incremental_makespan_matches_full_walk(n, m, seed, moves):
    problem = uniform_camera_workload(n, m, seed=seed)
    rng = random.Random(seed)
    solution = {device_id: [] for device_id in problem.device_ids}
    for request in problem.requests:
        solution[rng.choice(request.candidates)].append(request)
    evaluator = IncrementalMakespan(problem, solution)

    for _ in range(moves):
        # A random relocate, committed or undone at random — both paths
        # must leave the evaluator consistent with a full re-walk.
        request = rng.choice(problem.requests)
        source = next(d for d, q in solution.items() if request in q)
        target = rng.choice(request.candidates)
        source_index = solution[source].index(request)
        solution[source].pop(source_index)
        target_index = rng.randint(0, len(solution[target]))
        solution[target].insert(target_index, request)
        if source == target:
            touched = {source: min(source_index, target_index)}
        else:
            touched = {source: source_index, target: target_index}
        new_makespan, tails = evaluator.preview(touched)

        expected = _full_completions(problem, solution)
        assert new_makespan == max(expected.values())

        if rng.random() < 0.5:
            evaluator.commit(new_makespan, tails)
            assert evaluator.completions == expected
            assert evaluator.makespan == max(expected.values())
        else:
            solution[target].remove(request)
            solution[source].insert(source_index, request)
            assert evaluator.completions == _full_completions(problem,
                                                              solution)
