"""Property tests: schedule makespans respect provable bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SchedRequest,
    SrfaeScheduler,
    StaticCostModel,
    service_makespan,
)


@st.composite
def matrix_problems(draw):
    """Random static-cost instances with random eligibility."""
    n_devices = draw(st.integers(1, 5))
    n_requests = draw(st.integers(1, 10))
    device_ids = tuple(f"d{i}" for i in range(n_devices))
    requests = []
    costs = {}
    for r in range(n_requests):
        subset_size = draw(st.integers(1, n_devices))
        candidates = tuple(draw(st.permutations(device_ids))[:subset_size])
        requests.append(SchedRequest(f"r{r}", candidates))
        for device_id in candidates:
            costs[(f"r{r}", device_id)] = draw(
                st.floats(min_value=0.1, max_value=10.0,
                          allow_nan=False))
    return Problem(requests=tuple(requests), device_ids=device_ids,
                   cost_model=StaticCostModel(costs))


SCHEDULERS = [LerfaSrfeScheduler, SrfaeScheduler, ListScheduler,
              RandomScheduler]


@settings(max_examples=40, deadline=None)
@given(problem=matrix_problems(), seed=st.integers(0, 10))
def test_makespan_bounds(problem, seed):
    model = problem.cost_model
    # Lower bound: the costliest request's cheapest servicing.
    lower = max(
        min(model.estimate(r, d, None)[0] for d in r.candidates)
        for r in problem.requests)
    # Upper bound: everything serialized at worst cost.
    upper = sum(
        max(model.estimate(r, d, None)[0] for d in r.candidates)
        for r in problem.requests)
    for factory in SCHEDULERS:
        schedule = factory(seed).schedule(problem)
        schedule.validate(problem)
        makespan = service_makespan(problem, schedule)
        assert lower - 1e-9 <= makespan <= upper + 1e-9, factory.name


@settings(max_examples=30, deadline=None)
@given(problem=matrix_problems(), seed=st.integers(0, 10))
def test_proposed_never_worse_than_serial_on_one_device(problem, seed):
    """A trivial bound the greedy heuristics must clear: better than
    dumping every request on one (eligible) device when alternatives
    exist. Only checked when all requests share full eligibility."""
    full = all(set(r.candidates) == set(problem.device_ids)
               for r in problem.requests)
    if not full or problem.n_devices < 2:
        return
    model = problem.cost_model
    one_device = sum(model.estimate(r, problem.device_ids[0], None)[0]
                     for r in problem.requests)
    for factory in (LerfaSrfeScheduler, SrfaeScheduler):
        makespan = service_makespan(
            problem, factory(seed).schedule(problem))
        assert makespan <= one_device + 1e-9
