"""SA-specific behaviour: parameters, penalty handling, convergence."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling import (
    RandomScheduler,
    SAParameters,
    SimulatedAnnealingScheduler,
    service_makespan,
    skewed_camera_workload,
    uniform_camera_workload,
)

FAST = SAParameters(moves_per_temperature_per_request=5, cooling=0.8,
                    min_temp_fraction=0.01)


def test_parameter_validation():
    with pytest.raises(SchedulingError, match="cooling"):
        SAParameters(cooling=1.0)
    with pytest.raises(SchedulingError, match="cooling"):
        SAParameters(cooling=0.0)
    with pytest.raises(SchedulingError, match="initial_temp_factor"):
        SAParameters(initial_temp_factor=0)


def test_evaluation_counter_populated():
    scheduler = SimulatedAnnealingScheduler(0, parameters=FAST)
    scheduler.schedule(uniform_camera_workload(10, 4, seed=0))
    assert scheduler.evaluations > 0


def test_max_evaluations_caps_work():
    capped = SAParameters(moves_per_temperature_per_request=100,
                          cooling=0.999, max_evaluations=500)
    scheduler = SimulatedAnnealingScheduler(0, parameters=capped)
    scheduler.schedule(uniform_camera_workload(10, 4, seed=0))
    assert scheduler.evaluations <= 500 + 100 * 10  # one round of slack


def test_sa_beats_random_on_average():
    sa_total = random_total = 0.0
    for seed in range(5):
        problem = uniform_camera_workload(15, 5, seed=seed)
        sa = SimulatedAnnealingScheduler(seed, parameters=FAST)
        sa_total += service_makespan(problem, sa.schedule(problem))
        random_total += service_makespan(
            problem, RandomScheduler(seed).schedule(problem))
    assert sa_total < random_total


def test_sa_single_request_problem():
    problem = uniform_camera_workload(1, 3, seed=0)
    schedule = SimulatedAnnealingScheduler(0, parameters=FAST).schedule(
        problem)
    schedule.validate(problem)


def test_sa_single_device_problem():
    problem = uniform_camera_workload(6, 1, seed=0)
    schedule = SimulatedAnnealingScheduler(0, parameters=FAST).schedule(
        problem)
    schedule.validate(problem)
    assert len(schedule.assignments["cam1"]) == 6


def test_penalty_evaluations_inflate_under_skew():
    """Eligibility restrictions burn extra evaluations (the Figure 6
    mechanism): a skewed instance needs more draws than a uniform one
    for the same annealing budget."""
    uniform = SimulatedAnnealingScheduler(0, parameters=FAST)
    uniform.schedule(uniform_camera_workload(20, 10, seed=0))
    skewed = SimulatedAnnealingScheduler(0, parameters=FAST)
    skewed.schedule(skewed_camera_workload(20, 10, 0.2, seed=0))
    assert skewed.evaluations > uniform.evaluations


def test_sa_respects_eligibility_despite_unrestricted_proposals():
    for seed in range(3):
        problem = skewed_camera_workload(12, 6, 0.3, seed=seed)
        schedule = SimulatedAnnealingScheduler(
            seed, parameters=FAST).schedule(problem)
        schedule.validate(problem)  # raises on any violation


def test_sa_reproducible_per_seed():
    problem = uniform_camera_workload(10, 4, seed=2)
    first = SimulatedAnnealingScheduler(3, parameters=FAST).schedule(problem)
    second = SimulatedAnnealingScheduler(3, parameters=FAST).schedule(problem)
    assert first.assignments == second.assignments
