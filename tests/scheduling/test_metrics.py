"""Unit tests for makespan metrics and status-chained replay."""

import pytest

from repro.errors import SchedulingError
from repro.devices.camera import HeadPosition
from repro.scheduling import (
    Problem,
    Schedule,
    SchedRequest,
    StaticCostModel,
    breakdown,
    device_completion_times,
    request_completion_times,
    service_makespan,
    total_makespan,
)
from repro.scheduling.workload import CameraStatusCostModel


def static_problem():
    costs = {("r1", "d1"): 1.0, ("r2", "d1"): 2.0, ("r3", "d2"): 4.0}
    return Problem(
        requests=(SchedRequest("r1", ("d1",)),
                  SchedRequest("r2", ("d1",)),
                  SchedRequest("r3", ("d2",))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )


def test_device_completion_times_add_up():
    problem = static_problem()
    schedule = Schedule("test", {"d1": ["r1", "r2"], "d2": ["r3"]})
    completions = device_completion_times(problem, schedule)
    assert completions == {"d1": pytest.approx(3.0), "d2": pytest.approx(4.0)}


def test_service_makespan_is_max_completion():
    problem = static_problem()
    schedule = Schedule("test", {"d1": ["r1", "r2"], "d2": ["r3"]})
    assert service_makespan(problem, schedule) == pytest.approx(4.0)


def test_total_makespan_includes_scheduling_time():
    problem = static_problem()
    schedule = Schedule("test", {"d1": ["r1", "r2"], "d2": ["r3"]},
                        scheduling_seconds=0.5)
    assert total_makespan(problem, schedule) == pytest.approx(4.5)


def test_request_completion_times():
    problem = static_problem()
    schedule = Schedule("test", {"d1": ["r1", "r2"], "d2": ["r3"]})
    completions = request_completion_times(problem, schedule)
    assert completions == {"r1": pytest.approx(1.0),
                           "r2": pytest.approx(3.0),
                           "r3": pytest.approx(4.0)}


def test_breakdown_structure():
    problem = static_problem()
    schedule = Schedule("SRFAE", {"d1": ["r1", "r2"], "d2": ["r3"]},
                        scheduling_seconds=0.25)
    result = breakdown(problem, schedule)
    assert result.algorithm == "SRFAE"
    assert result.scheduling_seconds == pytest.approx(0.25)
    assert result.service_seconds == pytest.approx(4.0)
    assert result.total_seconds == pytest.approx(4.25)


def test_sequence_dependence_in_replay():
    """Same set, different order, different makespan: the paper's point."""
    rest = HeadPosition()
    far = HeadPosition(pan=170)
    near = HeadPosition(pan=10)
    model = CameraStatusCostModel({"d1": rest})
    problem = Problem(
        requests=(SchedRequest("far", ("d1",), payload=far),
                  SchedRequest("near", ("d1",), payload=near)),
        device_ids=("d1",),
        cost_model=model,
    )
    near_first = Schedule("a", {"d1": ["near", "far"]})
    far_first = Schedule("b", {"d1": ["far", "near"]})
    # near-first: 10 deg + 160 deg = 170 deg total panning.
    # far-first: 170 deg + 160 deg = 330 deg total panning.
    assert service_makespan(problem, near_first) < service_makespan(
        problem, far_first)


def test_schedule_device_of():
    schedule = Schedule("test", {"d1": ["r1"], "d2": ["r2"]})
    assert schedule.device_of("r1") == "d1"
    with pytest.raises(SchedulingError, match="not scheduled"):
        schedule.device_of("ghost")


def test_validate_rejects_double_scheduling():
    problem = static_problem()
    schedule = Schedule("bad", {"d1": ["r1", "r1", "r2"], "d2": ["r3"]})
    with pytest.raises(SchedulingError, match="twice"):
        schedule.validate(problem)


def test_validate_rejects_missing_request():
    problem = static_problem()
    schedule = Schedule("bad", {"d1": ["r1", "r2"], "d2": []})
    with pytest.raises(SchedulingError, match="unscheduled"):
        schedule.validate(problem)


def test_validate_rejects_non_candidate_device():
    problem = static_problem()
    schedule = Schedule("bad", {"d1": ["r1", "r2", "r3"], "d2": []})
    with pytest.raises(SchedulingError, match="non-candidate"):
        schedule.validate(problem)


def test_validate_rejects_unknown_device():
    problem = static_problem()
    schedule = Schedule("bad", {"ghost": ["r1"]})
    with pytest.raises(SchedulingError, match="unknown devices"):
        schedule.validate(problem)
