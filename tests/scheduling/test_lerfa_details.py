"""Algorithm-1-specific behaviour: LERFA ordering, SRFE sequencing."""

import pytest

from repro.devices.camera import HeadPosition
from repro.scheduling import (
    LerfaSrfeScheduler,
    Problem,
    SchedRequest,
    StaticCostModel,
)
from repro.scheduling.workload import CameraStatusCostModel


def test_least_eligible_requests_assigned_first():
    """A 1-candidate request must get its device even when a flexible
    request would otherwise grab it first."""
    costs = {("picky", "d1"): 5.0,
             ("flexible", "d1"): 1.0, ("flexible", "d2"): 10.0}
    problem = Problem(
        requests=(SchedRequest("flexible", ("d1", "d2")),
                  SchedRequest("picky", ("d1",))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    schedule = LerfaSrfeScheduler(0).schedule(problem)
    assert schedule.device_of("picky") == "d1"
    # LERFA saw d1 already loaded with 5.0, so flexible's projected
    # completion on d1 (6.0) lost to d2 (10.0)? No: 6.0 < 10.0, flexible
    # still joins d1. What matters: picky was assigned first.
    assert schedule.device_of("flexible") == "d1"


def test_workload_aware_assignment():
    """With equal costs everywhere, LERFA spreads requests evenly."""
    costs = {(f"r{i}", d): 1.0
             for i in range(6) for d in ("d1", "d2", "d3")}
    problem = Problem(
        requests=tuple(SchedRequest(f"r{i}", ("d1", "d2", "d3"))
                       for i in range(6)),
        device_ids=("d1", "d2", "d3"),
        cost_model=StaticCostModel(costs),
    )
    schedule = LerfaSrfeScheduler(0).schedule(problem)
    sizes = sorted(len(q) for q in schedule.assignments.values())
    assert sizes == [2, 2, 2]


def test_srfe_services_shortest_first():
    """Per-device order follows current-status cost, not arrival."""
    start = HeadPosition(pan=0.0)
    model = CameraStatusCostModel({"d1": start})
    # far arrives first, near second; SRFE should run near first.
    far = SchedRequest("far", ("d1",), payload=HeadPosition(pan=160))
    near = SchedRequest("near", ("d1",), payload=HeadPosition(pan=10))
    problem = Problem(requests=(far, near), device_ids=("d1",),
                      cost_model=model)
    schedule = LerfaSrfeScheduler(0).schedule(problem)
    assert schedule.assignments["d1"] == ["near", "far"]


def test_srfe_follows_the_moving_head():
    """After servicing A, the next-shortest is measured from A's pose —
    a pure greedy-by-initial-cost order would differ."""
    model = CameraStatusCostModel({"d1": HeadPosition(pan=0)})
    requests = (
        SchedRequest("a", ("d1",), payload=HeadPosition(pan=30)),
        SchedRequest("b", ("d1",), payload=HeadPosition(pan=60)),
        SchedRequest("c", ("d1",), payload=HeadPosition(pan=-20)),
    )
    problem = Problem(requests=requests, device_ids=("d1",),
                      cost_model=model)
    schedule = LerfaSrfeScheduler(0).schedule(problem)
    # Greedy chain from pan 0: c (20 deg) then a (50 deg from -20)?
    # No: from 0 the nearest is c at 20; from -20, a is 50 away and b 80,
    # so order is c, a, b.
    assert schedule.assignments["d1"] == ["c", "a", "b"]


def test_tie_shuffle_uses_scheduler_seed():
    costs = {(f"r{i}", d): 1.0 for i in range(8)
             for d in ("d1", "d2")}
    problem = Problem(
        requests=tuple(SchedRequest(f"r{i}", ("d1", "d2"))
                       for i in range(8)),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    outcomes = {
        tuple(tuple(q) for q in
              LerfaSrfeScheduler(seed).schedule(problem).assignments.values())
        for seed in range(6)
    }
    assert len(outcomes) > 1  # the random tie-break actually randomizes
