"""Scalability checks: the real-time requirement at larger instances.

"The computational cost of our scheduling algorithm must be small even
if the given input size is large" (Section 5.1). These tests pin the
proposed algorithms' scheduling time at instance sizes well beyond the
paper's 30-request maximum.
"""

import pytest

from repro.scheduling import (
    LerfaSrfeScheduler,
    ListScheduler,
    SrfaeScheduler,
    service_makespan,
    uniform_camera_workload,
)


@pytest.mark.slow
@pytest.mark.parametrize("factory", [
    LerfaSrfeScheduler, SrfaeScheduler, ListScheduler,
], ids=lambda f: f.name)
def test_greedy_algorithms_fast_at_200_requests(factory):
    problem = uniform_camera_workload(200, 50, seed=0)
    schedule = factory(0).schedule(problem)
    schedule.validate(problem)
    # A few seconds of computation at most for 200 requests on 50
    # devices (generous so a loaded CI machine does not flake).
    assert schedule.scheduling_seconds < 3.0


@pytest.mark.slow
def test_makespan_quality_holds_at_scale():
    problem = uniform_camera_workload(200, 50, seed=1)
    srfae = service_makespan(problem, SrfaeScheduler(1).schedule(problem))
    ls = service_makespan(problem, ListScheduler(1).schedule(problem))
    assert srfae < ls


@pytest.mark.slow
def test_srfae_scheduling_grows_manageably():
    """Doubling n should not blow scheduling time up more than ~8x
    (the algorithm is O(n^2 m) worst case with cheap constants)."""
    small = SrfaeScheduler(0).schedule(uniform_camera_workload(50, 10, seed=2))
    large = SrfaeScheduler(0).schedule(uniform_camera_workload(100, 10, seed=2))
    assert large.scheduling_seconds < 10 * max(small.scheduling_seconds,
                                               1e-3)
