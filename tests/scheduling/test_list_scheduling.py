"""LS-specific behaviour: idle-machine pull, retirement, list order."""

import pytest

from repro.scheduling import (
    ListScheduler,
    Problem,
    SchedRequest,
    StaticCostModel,
    service_makespan,
)


def test_idle_machine_takes_next_listed_job():
    """Jobs go to machines in list order as machines free up."""
    costs = {(f"r{i}", d): 2.0 for i in range(4) for d in ("d1", "d2")}
    problem = Problem(
        requests=tuple(SchedRequest(f"r{i}", ("d1", "d2"))
                       for i in range(4)),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    schedule = ListScheduler(0).schedule(problem)
    # Equal costs: strict alternation d1, d2, d1, d2.
    assert schedule.assignments["d1"] == ["r0", "r2"]
    assert schedule.assignments["d2"] == ["r1", "r3"]


def test_fast_machine_takes_more_jobs():
    costs = {}
    for i in range(6):
        costs[(f"r{i}", "fast")] = 1.0
        costs[(f"r{i}", "slow")] = 5.0
    problem = Problem(
        requests=tuple(SchedRequest(f"r{i}", ("fast", "slow"))
                       for i in range(6)),
        device_ids=("fast", "slow"),
        cost_model=StaticCostModel(costs),
    )
    schedule = ListScheduler(0).schedule(problem)
    assert len(schedule.assignments["fast"]) > len(
        schedule.assignments["slow"])


def test_machine_with_no_eligible_jobs_retires():
    """d2 is eligible for nothing; LS must not stall on it."""
    costs = {("r1", "d1"): 1.0, ("r2", "d1"): 1.0}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)),
                  SchedRequest("r2", ("d1",))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    schedule = ListScheduler(0).schedule(problem)
    assert schedule.assignments["d1"] == ["r1", "r2"]
    assert schedule.assignments["d2"] == []
    assert service_makespan(problem, schedule) == pytest.approx(2.0)


def test_ls_ignores_cost_in_job_choice():
    """LS takes the *first listed* eligible job, not the cheapest —
    the naivety the proposed algorithms improve on."""
    costs = {("expensive", "d1"): 9.0, ("cheap", "d1"): 1.0}
    problem = Problem(
        requests=(SchedRequest("expensive", ("d1",)),
                  SchedRequest("cheap", ("d1",))),
        device_ids=("d1",),
        cost_model=StaticCostModel(costs),
    )
    schedule = ListScheduler(0).schedule(problem)
    assert schedule.assignments["d1"] == ["expensive", "cheap"]


def test_ls_is_deterministic():
    from repro.scheduling import uniform_camera_workload
    problem = uniform_camera_workload(15, 5, seed=4)
    first = ListScheduler(0).schedule(problem)
    second = ListScheduler(99).schedule(problem)  # seed irrelevant to LS
    assert first.assignments == second.assignments
