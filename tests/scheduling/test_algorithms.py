"""Behavioural tests for the five scheduling algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SAParameters,
    SchedRequest,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
    StaticCostModel,
    service_makespan,
    total_makespan,
    uniform_camera_workload,
)

#: A fast SA for unit tests (the default is deliberately slow).
FAST_SA = SAParameters(moves_per_temperature_per_request=4,
                       cooling=0.85, min_temp_fraction=0.01)


def all_schedulers(seed=0):
    return [
        LerfaSrfeScheduler(seed),
        SrfaeScheduler(seed),
        ListScheduler(seed),
        SimulatedAnnealingScheduler(seed, parameters=FAST_SA),
        RandomScheduler(seed),
    ]


def two_by_two():
    """r1 cheap on d1, r2 cheap on d2 — the obvious optimum is 1.0."""
    costs = {("r1", "d1"): 1.0, ("r1", "d2"): 10.0,
             ("r2", "d1"): 10.0, ("r2", "d2"): 1.0}
    return Problem(
        requests=(SchedRequest("r1", ("d1", "d2")),
                  SchedRequest("r2", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )


# ----------------------------------------------------------------------
# Feasibility on every algorithm
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", all_schedulers(),
                         ids=lambda s: s.name)
def test_schedules_are_feasible_on_camera_workload(scheduler):
    problem = uniform_camera_workload(n_requests=12, n_devices=4, seed=7)
    schedule = scheduler.schedule(problem)
    schedule.validate(problem)  # raises on infeasibility
    assert schedule.scheduling_seconds >= 0
    assert sorted(schedule.scheduled_request_ids) == sorted(
        r.request_id for r in problem.requests)


@pytest.mark.parametrize("scheduler", all_schedulers(),
                         ids=lambda s: s.name)
def test_eligibility_restrictions_respected(scheduler):
    """Requests restricted to one device must land on it."""
    costs = {("r1", "d1"): 1.0,
             ("r2", "d2"): 1.0,
             ("r3", "d1"): 2.0, ("r3", "d2"): 2.0}
    problem = Problem(
        requests=(SchedRequest("r1", ("d1",)),
                  SchedRequest("r2", ("d2",)),
                  SchedRequest("r3", ("d1", "d2"))),
        device_ids=("d1", "d2"),
        cost_model=StaticCostModel(costs),
    )
    schedule = scheduler.schedule(problem)
    assert schedule.device_of("r1") == "d1"
    assert schedule.device_of("r2") == "d2"


# ----------------------------------------------------------------------
# Optimality on transparent instances
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", [
    LerfaSrfeScheduler(0), SrfaeScheduler(0), ListScheduler(0),
], ids=lambda s: s.name)
def test_greedy_algorithms_find_obvious_optimum(scheduler):
    problem = two_by_two()
    schedule = scheduler.schedule(problem)
    assert service_makespan(problem, schedule) == pytest.approx(1.0)


def test_sa_finds_obvious_optimum():
    problem = two_by_two()
    schedule = SimulatedAnnealingScheduler(0, parameters=FAST_SA).schedule(
        problem)
    assert service_makespan(problem, schedule) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Paper-shape expectations (deterministic seeds, averaged)
# ----------------------------------------------------------------------

def average_makespan(scheduler_factory, runs=8, n=20, m=10):
    total = 0.0
    for seed in range(runs):
        problem = uniform_camera_workload(n, m, seed=seed)
        scheduler = scheduler_factory(seed)
        total += service_makespan(problem, scheduler.schedule(problem))
    return total / runs


def test_proposed_algorithms_beat_random():
    random_avg = average_makespan(lambda s: RandomScheduler(s))
    lerfa_avg = average_makespan(lambda s: LerfaSrfeScheduler(s))
    srfae_avg = average_makespan(lambda s: SrfaeScheduler(s))
    assert lerfa_avg < random_avg
    assert srfae_avg < random_avg


def test_proposed_algorithms_beat_ls():
    ls_avg = average_makespan(lambda s: ListScheduler(s))
    lerfa_avg = average_makespan(lambda s: LerfaSrfeScheduler(s))
    srfae_avg = average_makespan(lambda s: SrfaeScheduler(s))
    assert lerfa_avg < ls_avg
    assert srfae_avg < ls_avg


def test_sa_scheduling_time_dominates_greedy():
    """Figure 5's shape: SA computation >> greedy computation."""
    problem = uniform_camera_workload(20, 10, seed=1)
    sa = SimulatedAnnealingScheduler(0)  # default (slow) parameters
    greedy = SrfaeScheduler(0)
    sa_schedule = sa.schedule(problem)
    greedy_schedule = greedy.schedule(problem)
    assert sa_schedule.scheduling_seconds > (
        20 * greedy_schedule.scheduling_seconds)


# ----------------------------------------------------------------------
# Determinism and reproducibility
# ----------------------------------------------------------------------

@pytest.mark.parametrize("factory", [
    lambda s: LerfaSrfeScheduler(s),
    lambda s: SrfaeScheduler(s),
    lambda s: ListScheduler(s),
    lambda s: RandomScheduler(s),
], ids=["LERFA+SRFE", "SRFAE", "LS", "RANDOM"])
def test_same_seed_same_schedule(factory):
    problem = uniform_camera_workload(10, 4, seed=3)
    first = factory(5).schedule(problem)
    second = factory(5).schedule(problem)
    assert first.assignments == second.assignments


def test_different_seeds_vary_random_schedule():
    problem = uniform_camera_workload(10, 4, seed=3)
    outcomes = {
        tuple(sorted((d, tuple(q))
                     for d, q in RandomScheduler(s).schedule(
                         problem).assignments.items()))
        for s in range(5)
    }
    assert len(outcomes) > 1


# ----------------------------------------------------------------------
# Property: feasibility over randomized instances
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 12), m=st.integers(1, 5), seed=st.integers(0, 99))
def test_all_algorithms_feasible_on_random_instances(n, m, seed):
    problem = uniform_camera_workload(n, m, seed=seed)
    for scheduler in all_schedulers(seed):
        schedule = scheduler.schedule(problem)
        schedule.validate(problem)
        makespan = total_makespan(problem, schedule)
        # Makespan can never beat the costliest single request's
        # cheapest-possible servicing.
        assert makespan >= 0.36
