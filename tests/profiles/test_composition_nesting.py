"""Deeply nested action-composition trees estimate and serialize right."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiles import (
    ActionProfile,
    AtomicOperationCost,
    CostTable,
    OperationRef,
    action_profile_from_xml,
    action_profile_to_xml,
)
from repro.profiles.action_profile import par, seq


@pytest.fixture
def table():
    return CostTable.from_operations("widget", [
        AtomicOperationCost("a", fixed_seconds=1.0),
        AtomicOperationCost("b", fixed_seconds=2.0),
        AtomicOperationCost("c", fixed_seconds=0.0,
                            per_unit_seconds=0.5, unit="steps"),
    ])


def test_nested_seq_of_par(table):
    # seq(a, par(b, seq(a, a))): 1 + max(2, 1+1) = 3
    tree = seq(OperationRef("a"),
               par(OperationRef("b"),
                   seq(OperationRef("a"), OperationRef("a"))))
    assert tree.estimate(table, {}) == pytest.approx(3.0)


def test_nested_par_of_seq(table):
    # par(seq(a, b), seq(b, b)): max(3, 4) = 4
    tree = par(seq(OperationRef("a"), OperationRef("b")),
               seq(OperationRef("b"), OperationRef("b")))
    assert tree.estimate(table, {}) == pytest.approx(4.0)


def test_quantities_deep_in_tree(table):
    tree = seq(par(OperationRef("c", quantity="q1"),
                   OperationRef("c", quantity="q2")),
               OperationRef("a"))
    cost = tree.estimate(table, {"q1": 4, "q2": 10})
    assert cost == pytest.approx(max(2.0, 5.0) + 1.0)
    assert tree.quantity_names() == {"q1", "q2"}


leaves = st.sampled_from(["a", "b"]).map(OperationRef)


def composites(children):
    return st.one_of(
        st.lists(children, min_size=1, max_size=3).map(
            lambda kids: seq(*kids)),
        st.lists(children, min_size=1, max_size=3).map(
            lambda kids: par(*kids)),
    )


trees = st.recursive(leaves, composites, max_leaves=16)


@settings(max_examples=60, deadline=None)
@given(trees)
def test_random_trees_round_trip_through_xml(tree):
    profile = ActionProfile("act", "widget", tree)
    restored = action_profile_from_xml(action_profile_to_xml(profile))
    assert restored == profile


@settings(max_examples=60, deadline=None)
@given(trees)
def test_estimate_bounded_by_sequential_sum(tree):
    """Any tree costs at most the all-sequential sum and at least the
    single most expensive leaf."""
    costs = CostTable.from_operations("widget", [
        AtomicOperationCost("a", fixed_seconds=1.0),
        AtomicOperationCost("b", fixed_seconds=2.0),
    ])
    leaf_costs = [costs.estimate(name)
                  for name in _leaf_names(tree)]
    estimate = tree.estimate(costs, {})
    assert max(leaf_costs) - 1e-9 <= estimate <= sum(leaf_costs) + 1e-9


def _leaf_names(tree):
    if isinstance(tree, OperationRef):
        return [tree.operation]
    names = []
    for child in tree.children:
        names.extend(_leaf_names(child))
    return names
