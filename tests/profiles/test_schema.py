"""Unit tests for device catalogs and attribute specs."""

import pytest

from repro.errors import ProfileError
from repro.profiles import AttributeSpec, DeviceCatalog


def make_catalog():
    return DeviceCatalog(
        device_type="sensor",
        model="MICA2",
        attributes=[
            AttributeSpec("id", "int", sensory=False),
            AttributeSpec("loc_x", "float", sensory=False),
            AttributeSpec(
                "accel_x", "float", sensory=True, unit="mg",
                acquisition_method="read_accel_x",
            ),
            AttributeSpec(
                "battery", "float", sensory=True, unit="V",
                acquisition_method="read_battery",
            ),
        ],
    )


def test_attribute_lookup():
    catalog = make_catalog()
    assert catalog.attribute("accel_x").unit == "mg"
    assert catalog.has_attribute("battery")
    assert not catalog.has_attribute("missing")


def test_unknown_attribute_raises():
    with pytest.raises(ProfileError, match="no attribute"):
        make_catalog().attribute("nope")


def test_sensory_split():
    catalog = make_catalog()
    assert [a.name for a in catalog.sensory_attributes] == ["accel_x", "battery"]
    assert [a.name for a in catalog.non_sensory_attributes] == ["id", "loc_x"]


def test_column_types():
    types = make_catalog().column_types()
    assert types["id"] is int
    assert types["accel_x"] is float


def test_duplicate_attribute_rejected():
    with pytest.raises(ProfileError, match="duplicate"):
        DeviceCatalog(
            device_type="sensor",
            attributes=[
                AttributeSpec("id", "int", sensory=False),
                AttributeSpec("id", "float", sensory=False),
            ],
        )


def test_bad_type_rejected():
    with pytest.raises(ProfileError, match="unsupported type"):
        AttributeSpec("x", "decimal", sensory=False)


def test_bad_name_rejected():
    with pytest.raises(ProfileError, match="not an identifier"):
        AttributeSpec("3bad", "int", sensory=False)


def test_sensory_needs_acquisition_method():
    with pytest.raises(ProfileError, match="acquisition_method"):
        AttributeSpec("temp", "float", sensory=True)


def test_bad_device_type_rejected():
    with pytest.raises(ProfileError, match="not an identifier"):
        DeviceCatalog(device_type="bad type")
