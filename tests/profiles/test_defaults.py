"""Consistency tests: built-in profiles match the device simulators."""

import pytest

from repro.devices.camera import CameraCalibration
from repro.actions.builtins import builtin_definitions, sendphoto_definition
from repro.profiles import (
    action_profile_from_xml,
    action_profile_to_xml,
    catalog_from_xml,
    catalog_to_xml,
    cost_table_from_xml,
    cost_table_to_xml,
)
from repro.profiles.defaults import (
    camera_catalog,
    camera_cost_table,
    phone_catalog,
    phone_cost_table,
    sensor_catalog,
    sensor_cost_table,
)


def test_camera_cost_table_matches_calibration():
    cal = CameraCalibration()
    table = camera_cost_table(cal)
    assert table.estimate("connect") == cal.connect_seconds
    assert table.estimate("pan", cal.pan_max - cal.pan_min) == (
        pytest.approx(cal.max_movement_seconds()))
    assert table.estimate("capture_medium") == cal.capture_seconds["medium"]
    # Fixed photo cost (connect + capture + store) is the paper's 0.36 s.
    fixed = (table.estimate("connect") + table.estimate("capture_medium")
             + table.estimate("store"))
    assert fixed == pytest.approx(0.36)


def test_builtin_profiles_validate_against_their_cost_tables():
    tables = {"camera": camera_cost_table(), "sensor": sensor_cost_table(),
              "phone": phone_cost_table()}
    for definition in builtin_definitions() + [sendphoto_definition()]:
        definition.profile.validate_against(tables[definition.device_type])


def test_catalogs_expose_location_columns():
    for catalog in (camera_catalog(), sensor_catalog(), phone_catalog()):
        assert catalog.has_attribute("loc_x")
        assert catalog.has_attribute("loc_y")
        assert catalog.has_attribute("id")


def test_sensor_catalog_covers_figure_1_attributes():
    catalog = sensor_catalog()
    assert catalog.attribute("accel_x").sensory
    assert not catalog.attribute("id").sensory


def test_default_profiles_round_trip_through_xml():
    """The shipped profiles serialize like the prototype's XML files."""
    for catalog in (camera_catalog(), sensor_catalog(), phone_catalog()):
        assert catalog_from_xml(catalog_to_xml(catalog)) == catalog
    for table in (camera_cost_table(), sensor_cost_table(),
                  phone_cost_table()):
        restored = cost_table_from_xml(cost_table_to_xml(table))
        assert restored.operations == table.operations
    for definition in builtin_definitions():
        profile = definition.profile
        assert action_profile_from_xml(
            action_profile_to_xml(profile)) == profile


def test_sensor_connect_cost_is_per_hop():
    table = sensor_cost_table()
    assert table.estimate("connect", 1) == pytest.approx(0.02)
    assert table.estimate("connect", 4) == pytest.approx(0.08)
