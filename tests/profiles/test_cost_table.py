"""Unit tests for atomic-operation cost tables."""

import pytest

from repro.errors import ProfileError
from repro.profiles import AtomicOperationCost, CostTable


def test_fixed_cost_estimate():
    op = AtomicOperationCost("capture_medium", fixed_seconds=0.2)
    assert op.estimate() == pytest.approx(0.2)


def test_per_unit_cost_estimate():
    op = AtomicOperationCost("pan", fixed_seconds=0.1,
                             per_unit_seconds=0.01, unit="degrees")
    assert op.estimate(90) == pytest.approx(0.1 + 0.9)


def test_negative_cost_rejected():
    with pytest.raises(ProfileError, match="negative cost"):
        AtomicOperationCost("bad", fixed_seconds=-1.0)


def test_per_unit_without_unit_rejected():
    with pytest.raises(ProfileError, match="no unit"):
        AtomicOperationCost("bad", fixed_seconds=0.0, per_unit_seconds=0.5)


def test_negative_quantity_rejected():
    op = AtomicOperationCost("pan", fixed_seconds=0.1,
                             per_unit_seconds=0.01, unit="degrees")
    with pytest.raises(ProfileError, match="negative quantity"):
        op.estimate(-1)


def test_table_lookup_and_estimate():
    table = CostTable.from_operations("camera", [
        AtomicOperationCost("connect", fixed_seconds=0.05),
        AtomicOperationCost("pan", fixed_seconds=0.0,
                            per_unit_seconds=0.0147, unit="degrees"),
    ])
    assert "connect" in table
    assert len(table) == 2
    assert table.estimate("pan", 100) == pytest.approx(1.47)


def test_table_duplicate_rejected():
    table = CostTable("camera")
    table.add(AtomicOperationCost("connect", fixed_seconds=0.05))
    with pytest.raises(ProfileError, match="duplicate"):
        table.add(AtomicOperationCost("connect", fixed_seconds=0.06))


def test_table_unknown_operation_raises():
    table = CostTable("camera")
    with pytest.raises(ProfileError, match="no atomic operation"):
        table.operation("teleport")
