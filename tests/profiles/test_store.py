"""Tests for the on-disk XML profile store."""

import os

import pytest

from repro.errors import ProfileError
from repro.actions.builtins import photo_profile
from repro.profiles.defaults import camera_catalog, camera_cost_table
from repro.profiles.store import ProfileStore


@pytest.fixture
def store(tmp_path):
    return ProfileStore(str(tmp_path))


def test_catalog_round_trip(store):
    catalog = camera_catalog()
    path = store.save_catalog(catalog)
    assert path.endswith(os.path.join("catalogs", "camera.xml"))
    assert store.load_catalog("camera") == catalog


def test_cost_table_round_trip(store):
    table = camera_cost_table()
    store.save_cost_table(table)
    assert store.load_cost_table("camera").operations == table.operations


def test_action_profile_round_trip(store):
    profile = photo_profile()
    store.save_action_profile(profile)
    assert store.load_action_profile("photo") == profile


def test_missing_profile_raises(store):
    with pytest.raises(ProfileError, match="no catalog profile"):
        store.load_catalog("toaster")


def test_unsafe_name_rejected(store):
    with pytest.raises(ProfileError, match="unsafe"):
        store.load_catalog("../../etc/passwd")


def test_enumeration(store):
    assert store.catalog_names() == []
    store.save_catalog(camera_catalog())
    store.save_cost_table(camera_cost_table())
    store.save_action_profile(photo_profile())
    assert store.catalog_names() == ["camera"]
    assert store.cost_table_names() == ["camera"]
    assert store.action_profile_names() == ["photo"]


def test_save_builtin_profiles_writes_full_layout(store):
    paths = store.save_builtin_profiles()
    assert len(paths) == 3 + 3 + 4  # catalogs + costs + 4 action profiles
    assert store.catalog_names() == ["camera", "phone", "sensor"]
    assert store.action_profile_names() == ["beep", "blink", "photo",
                                            "sendphoto"]
    loaded = store.load_all_catalogs()
    assert set(loaded) == {"camera", "phone", "sensor"}


def test_files_are_valid_xml_on_disk(store, tmp_path):
    store.save_builtin_profiles()
    import xml.etree.ElementTree as ET
    for sub in ("catalogs", "costs", "actions"):
        directory = tmp_path / sub
        for entry in directory.iterdir():
            ET.parse(str(entry))  # raises on malformed XML
