"""Unit tests for action profiles (composition trees and estimation)."""

import pytest

from repro.errors import ProfileError
from repro.profiles import (
    ActionProfile,
    AtomicOperationCost,
    CostTable,
    OperationRef,
)
from repro.profiles.action_profile import par, seq


@pytest.fixture
def camera_costs():
    return CostTable.from_operations("camera", [
        AtomicOperationCost("connect", fixed_seconds=0.1),
        AtomicOperationCost("pan", fixed_seconds=0.0,
                            per_unit_seconds=0.01, unit="degrees"),
        AtomicOperationCost("tilt", fixed_seconds=0.0,
                            per_unit_seconds=0.02, unit="degrees"),
        AtomicOperationCost("capture_medium", fixed_seconds=0.2),
    ])


def photo_profile():
    return ActionProfile(
        action_name="photo",
        device_type="camera",
        composition=seq(
            OperationRef("connect"),
            par(OperationRef("pan", quantity="pan_degrees"),
                OperationRef("tilt", quantity="tilt_degrees")),
            OperationRef("capture_medium"),
        ),
        status_fields=["pan", "tilt"],
    )


def test_sequence_costs_add(camera_costs):
    profile = ActionProfile(
        "two_step", "camera",
        seq(OperationRef("connect"), OperationRef("capture_medium")),
    )
    assert profile.estimate(camera_costs, {}) == pytest.approx(0.3)


def test_parallel_cost_is_max(camera_costs):
    profile = photo_profile()
    # pan 100 deg = 1.0 s; tilt 10 deg = 0.2 s: parallel = 1.0 s
    cost = profile.estimate(
        camera_costs, {"pan_degrees": 100, "tilt_degrees": 10})
    assert cost == pytest.approx(0.1 + 1.0 + 0.2)


def test_parallel_other_branch_dominates(camera_costs):
    profile = photo_profile()
    # pan 10 deg = 0.1 s; tilt 50 deg = 1.0 s: parallel = 1.0 s
    cost = profile.estimate(
        camera_costs, {"pan_degrees": 10, "tilt_degrees": 50})
    assert cost == pytest.approx(0.1 + 1.0 + 0.2)


def test_missing_quantity_raises(camera_costs):
    with pytest.raises(ProfileError, match="was not resolved"):
        photo_profile().estimate(camera_costs, {"pan_degrees": 10})


def test_required_quantities():
    assert photo_profile().required_quantities() == {
        "pan_degrees", "tilt_degrees"}


def test_operation_names():
    assert photo_profile().composition.operation_names() == {
        "connect", "pan", "tilt", "capture_medium"}


def test_validate_against_passes(camera_costs):
    photo_profile().validate_against(camera_costs)


def test_validate_detects_missing_operation(camera_costs):
    profile = ActionProfile(
        "bad", "camera", seq(OperationRef("connect"), OperationRef("warp")))
    with pytest.raises(ProfileError, match="warp"):
        profile.validate_against(camera_costs)


def test_validate_detects_device_type_mismatch(camera_costs):
    profile = ActionProfile("photo", "phone", OperationRef("connect"))
    with pytest.raises(ProfileError, match="cost table is for"):
        profile.validate_against(camera_costs)


def test_empty_sequence_rejected():
    with pytest.raises(ProfileError, match="at least one child"):
        seq()


def test_empty_parallel_rejected():
    with pytest.raises(ProfileError, match="at least one child"):
        par()
