"""Round-trip and error tests for profile XML serialization."""

import pytest

from repro.errors import ProfileError
from repro.profiles import (
    ActionProfile,
    AtomicOperationCost,
    AttributeSpec,
    CostTable,
    DeviceCatalog,
    OperationRef,
    action_profile_from_xml,
    action_profile_to_xml,
    catalog_from_xml,
    catalog_to_xml,
    cost_table_from_xml,
    cost_table_to_xml,
)
from repro.profiles.action_profile import par, seq


def test_catalog_round_trip():
    catalog = DeviceCatalog(
        device_type="camera",
        model="AXIS 2130",
        description="PTZ network camera",
        attributes=[
            AttributeSpec("id", "int", sensory=False),
            AttributeSpec("ip", "str", sensory=False,
                          description="management address"),
            AttributeSpec("zoom", "float", sensory=True, unit="x",
                          acquisition_method="read_zoom"),
        ],
    )
    assert catalog_from_xml(catalog_to_xml(catalog)) == catalog


def test_cost_table_round_trip():
    table = CostTable.from_operations("camera", [
        AtomicOperationCost("connect", fixed_seconds=0.05,
                            description="open control channel"),
        AtomicOperationCost("pan", fixed_seconds=0.0,
                            per_unit_seconds=0.0147, unit="degrees"),
    ])
    restored = cost_table_from_xml(cost_table_to_xml(table))
    assert restored.device_type == "camera"
    assert restored.operations == table.operations


def test_action_profile_round_trip():
    profile = ActionProfile(
        action_name="photo",
        device_type="camera",
        composition=seq(
            OperationRef("connect"),
            par(OperationRef("pan", quantity="pan_degrees"),
                OperationRef("tilt", quantity="tilt_degrees")),
            OperationRef("capture_medium"),
        ),
        status_fields=["pan", "tilt"],
        description="move head and take a medium photo",
    )
    restored = action_profile_from_xml(action_profile_to_xml(profile))
    assert restored == profile


def test_malformed_xml_raises():
    with pytest.raises(ProfileError, match="malformed"):
        catalog_from_xml("<device_catalog")


def test_wrong_root_tag_raises():
    with pytest.raises(ProfileError, match="expected <device_catalog>"):
        catalog_from_xml("<not_a_catalog/>")


def test_missing_required_attribute_raises():
    with pytest.raises(ProfileError, match="missing required attribute"):
        catalog_from_xml(
            "<device_catalog device_type='x'><attribute name='a'/>"
            "</device_catalog>")


def test_non_numeric_cost_raises():
    with pytest.raises(ProfileError, match="non-numeric"):
        cost_table_from_xml(
            "<atomic_operation_cost device_type='camera'>"
            "<operation name='pan' fixed_seconds='fast'/>"
            "</atomic_operation_cost>")


def test_profile_without_composition_raises():
    with pytest.raises(ProfileError, match="composition"):
        action_profile_from_xml(
            "<action_profile action='photo' device_type='camera'/>")


def test_unknown_composition_tag_raises():
    with pytest.raises(ProfileError, match="unknown composition element"):
        action_profile_from_xml(
            "<action_profile action='photo' device_type='camera'>"
            "<composition><loop/></composition></action_profile>")


def test_costs_survive_float_precision():
    table = CostTable.from_operations("camera", [
        AtomicOperationCost("pan", fixed_seconds=0.1234567890123,
                            per_unit_seconds=1e-7, unit="degrees"),
    ])
    restored = cost_table_from_xml(cost_table_to_xml(table))
    op = restored.operation("pan")
    assert op.fixed_seconds == 0.1234567890123
    assert op.per_unit_seconds == 1e-7
