"""Smoke tests for the ``python -m repro`` entry point."""

import repro
from repro.__main__ import main, run_demo


def test_version_flag(capsys):
    assert main(["--version"]) == 0
    assert capsys.readouterr().out.strip() == repro.__version__


def test_banner_without_demo(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Aorta" in out and "ICDCS 2005" in out


def test_demo_runs_to_completion(capsys):
    assert run_demo() == 0
    out = capsys.readouterr().out
    assert "Photo stored at photos/admin/" in out
    assert "request_serviced" in out
