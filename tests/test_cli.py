"""Smoke tests for the ``python -m repro`` entry point."""

import repro
from repro.__main__ import main, run_demo


def test_version_flag(capsys):
    assert main(["--version"]) == 0
    assert capsys.readouterr().out.strip() == repro.__version__


def test_banner_without_demo(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Aorta" in out and "ICDCS 2005" in out


def test_demo_runs_to_completion(capsys):
    assert run_demo() == 0
    out = capsys.readouterr().out
    assert "Photo stored at photos/admin/" in out
    assert "request_serviced" in out


def test_sharded_demo_services_one_photo_per_region(capsys):
    assert main(["--demo", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "Fleet of 3 shards" in out
    assert out.count("serviced") >= 4  # three per-shard lines + total
    assert "Fleet total: 9 devices, 3 serviced" in out
