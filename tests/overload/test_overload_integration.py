"""The overload plane end to end: off-identity, storms, invariants.

Three families of guarantees. First, the off switch: with
``overload=False`` (or the knob absent) the engine must be
byte-identical to the pre-overload engine, pinned by the checked-in
obs goldens on both runtime backends. Second, the storm scenario:
bounded queues actually bound, shedding fires, statistics appear only
when the plane is on, and the whole run is deterministic. Third,
property tests: queue occupancy never exceeds its bound under any
storm, and a permissive policy under light load services exactly the
requests the plain engine services.
"""

import pytest

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    PanTiltZoomCamera,
    Point,
    SensorMote,
)
from repro.actions.request import ActionRequest
from repro.devices.failures import FailureInjector
from repro.overload import OverloadPolicy, TierRate
from repro.runtime import RealtimeRuntime, VirtualRuntime

from tests.core.conftest import LOSSLESS
from tests.obs.golden import assert_golden, dump_engine
from tests.obs.scenarios import (
    OVERLOAD_STORM_POLICY,
    continuous_outage_scenario,
    overload_storm_scenario,
    snapshot_scenario,
)

OVERLOAD_OFF = dict(overload=False)


def build_overload_lab(policy, n_cameras=3, env=None):
    """Cameras covering one quiet mote, overload plane configured."""
    env = env if env is not None else Environment()
    engine = AortaEngine(
        env, config=EngineConfig(overload=True, overload_policy=policy),
        links=dict(LOSSLESS))
    for i in range(n_cameras):
        engine.add_device(PanTiltZoomCamera(
            env, f"cam{i + 1}", Point(20.0 * i, 0.0),
            facing=0.0, view_half_angle=170.0, view_range=1000.0))
    engine.add_device(SensorMote(env, "mote1", Point(5, 3),
                                 noise_amplitude=0.0))
    return engine


def storm_request(index, now, candidates):
    if index % 4 == 0:
        tier, deadline = 3, None
    elif index % 4 == 1:
        tier, deadline = 2, now + 3.0
    else:
        tier, deadline = 1, now + 10.0
    return ActionRequest(
        action_name="photo",
        arguments={"target": Point(10.0 + index, 5.0),
                   "directory": "photos"},
        created_at=now, candidates=candidates,
        request_id=f"storm{index:02d}", priority=tier, deadline=deadline)


class TestOverloadOffIdentity:
    """``overload=False`` must be byte-identical to the pre-overload
    engine, pinned by the checked-in goldens on both runtime backends."""

    def test_snapshot_golden_with_explicit_overload_off(self):
        engine = snapshot_scenario(observability=True, **OVERLOAD_OFF)
        assert_golden("snapshot_obs", dump_engine(engine))

    def test_continuous_outage_golden_with_explicit_overload_off(self):
        engine = continuous_outage_scenario(observability=True,
                                            **OVERLOAD_OFF)
        assert_golden("continuous_outage_obs", dump_engine(engine))

    @pytest.mark.parametrize("backend", ["virtual", "realtime"])
    def test_both_backends_match_the_golden_with_overload_off(
            self, backend):
        env = (VirtualRuntime() if backend == "virtual"
               else RealtimeRuntime(time_scale=0))
        engine = snapshot_scenario(observability=True, env=env,
                                   **OVERLOAD_OFF)
        assert_golden("snapshot_obs", dump_engine(engine))

    def test_knob_absent_equals_knob_off(self):
        absent = dump_engine(snapshot_scenario(observability=None))
        off = dump_engine(snapshot_scenario(observability=None,
                                            **OVERLOAD_OFF))
        assert absent == off

    def test_overload_statistics_gated_on_the_knob(self):
        off = snapshot_scenario(observability=None, **OVERLOAD_OFF)
        assert not any(key.startswith("overload_")
                       for key in off.statistics())
        on = overload_storm_scenario()
        stats = on.statistics()
        assert "overload_admitted_requests" in stats
        assert "overload_peak_queue_depth" in stats
        assert "requests_shed" in stats


class TestStormScenario:
    def test_bounded_queues_hold_under_the_storm(self):
        engine = overload_storm_scenario()
        limit = OVERLOAD_STORM_POLICY.queue_limit
        for operator in engine.dispatcher._operators.values():
            assert operator.peak_pending <= limit

    def test_storm_sheds_and_rejects(self):
        engine = overload_storm_scenario()
        stats = engine.statistics()
        assert stats["overload_rejected_requests"] > 0
        assert stats["requests_shed"] > 0
        assert stats["overload_rejected_queries"] == 1
        # Protected tier 3 is never pressure-shed.
        assert stats["overload_shed_by_tier"].get(3, 0) == 0

    def test_storm_run_is_deterministic(self):
        first = dump_engine(overload_storm_scenario(observability=True))
        second = dump_engine(overload_storm_scenario(observability=True))
        assert first == second

    def test_shed_requests_reach_completed_with_reasons(self):
        engine = overload_storm_scenario()
        shed = [r for r in engine.completed_requests
                if r.state.value == "shed"]
        assert shed
        assert all(r.failure_reason for r in shed)
        assert all(r.completed_at is not None for r in shed)


# ----------------------------------------------------------------------
# Property tests: bounded occupancy under any storm; serviced-set
# equality when capacity is sufficient.
# ----------------------------------------------------------------------
try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dep
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestQueueBoundInvariant:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(queue_limit=st.integers(min_value=1, max_value=8),
           rate=st.floats(min_value=5.0, max_value=30.0),
           duration=st.floats(min_value=0.5, max_value=2.0),
           n_cameras=st.integers(min_value=1, max_value=4))
    def test_occupancy_never_exceeds_the_bound(
            self, queue_limit, rate, duration, n_cameras):
        policy = OverloadPolicy(
            tier_rates={1: TierRate(rate=2.0, burst=4.0)},
            queue_limit=queue_limit,
            shed_high_watermark=max(2, queue_limit),
            shed_low_watermark=max(2, queue_limit) - 1)
        engine = build_overload_lab(policy, n_cameras=n_cameras)
        candidates = tuple(f"cam{i + 1}" for i in range(n_cameras))
        operator = engine.dispatcher.operator_for(
            engine.actions.get("photo"))
        injector = FailureInjector(engine.env)
        injector.schedule_request_storm(
            lambda r: engine.dispatcher.submit(operator, r),
            lambda i, now: storm_request(i, now, candidates),
            start=1.0, duration=duration, rate=rate)
        engine.start()
        engine.run(until=30.0)
        for op in engine.dispatcher._operators.values():
            assert op.peak_pending <= queue_limit
        # Everything submitted was accounted: serviced, failed, shed,
        # rejected at the gate, or still in flight — never lost.
        stats = engine.statistics()
        submitted = int(rate * duration)
        accounted = (stats["overload_admitted_requests"]
                     + stats["overload_rejected_requests"])
        assert accounted == submitted


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis unavailable")
class TestServicedSetEquivalence:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rounds=st.integers(min_value=1, max_value=4),
           n_cameras=st.integers(min_value=1, max_value=3))
    def test_permissive_plane_services_the_same_requests(
            self, rounds, n_cameras):
        """When capacity is sufficient, the overload plane is invisible:
        the non-shed serviced set equals the plain engine's."""
        def run(config):
            env = Environment()
            engine = AortaEngine(env, config=config,
                                 links=dict(LOSSLESS))
            for i in range(n_cameras):
                engine.add_device(PanTiltZoomCamera(
                    env, f"cam{i + 1}", Point(20.0 * i, 0.0),
                    facing=0.0, view_half_angle=170.0,
                    view_range=1000.0))
            engine.add_device(SensorMote(env, "mote1", Point(5, 3),
                                         noise_amplitude=0.0))
            candidates = tuple(f"cam{i + 1}" for i in range(n_cameras))
            operator = engine.dispatcher.operator_for(
                engine.actions.get("photo"))

            def workload(env):
                for round_no in range(rounds):
                    delay = 20.0 * round_no + 2.0 - env.now
                    if delay > 0:
                        yield env.timeout(delay)
                    engine.dispatcher.submit(operator, ActionRequest(
                        action_name="photo",
                        arguments={"target": Point(5.0 + 3.0 * round_no,
                                                   5.0),
                                   "directory": "photos"},
                        created_at=env.now, candidates=candidates,
                        request_id=f"pr{round_no}"))

            env.process(workload(env))
            engine.start()
            engine.run(until=20.0 * rounds + 40.0)
            return sorted(r.request_id
                          for r in engine.completed_requests
                          if r.state.value == "serviced")

        plain = run(EngineConfig())
        # The default policy is deliberately permissive: light load
        # passes every gate untouched.
        guarded = run(EngineConfig(overload=True,
                                   overload_policy=OverloadPolicy()))
        assert plain == guarded
