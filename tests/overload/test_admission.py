"""Unit tests for admission control: token buckets and capacity."""

import pytest

from repro.errors import AortaError
from repro.overload import AdmissionController, OverloadPolicy, TierRate, TokenBucket
from repro.overload.admission import REASON_CAPACITY, REASON_RATE


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert (bucket.granted, bucket.refused) == (2, 1)

    def test_lazy_refill_on_virtual_time(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.1)   # only 0.2 tokens back
        assert bucket.try_take(0.6)       # >= 1 token accrued

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_time_going_backwards_does_not_refund(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(5.0)
        assert not bucket.try_take(4.0)

    def test_deterministic_given_call_sequence(self):
        def run():
            bucket = TokenBucket(rate=0.5, burst=2.0)
            return [bucket.try_take(t / 4.0) for t in range(40)]
        assert run() == run()


class TestPolicyValidation:
    def test_tier_rate_requires_positive_rate(self):
        with pytest.raises(AortaError, match="rate"):
            TierRate(rate=0.0, burst=1.0)

    def test_tier_rate_requires_burst_at_least_one(self):
        with pytest.raises(AortaError, match="burst"):
            TierRate(rate=1.0, burst=0.5)

    def test_watermarks_must_hysterese(self):
        with pytest.raises(AortaError, match="strictly below"):
            OverloadPolicy(shed_high_watermark=10, shed_low_watermark=10)

    def test_utilization_cap_bounds(self):
        with pytest.raises(AortaError, match="utilization_cap"):
            OverloadPolicy(utilization_cap=1.5)

    def test_queue_limit_positive(self):
        with pytest.raises(AortaError, match="queue_limit"):
            OverloadPolicy(queue_limit=0)


def controller(policy, fleet=4):
    return AdmissionController(policy, fleet_size=lambda: fleet)


class TestRateGate:
    def test_unlimited_tier_always_admits(self):
        ctrl = controller(OverloadPolicy(tier_rates={1: TierRate(1.0, 1.0)}))
        for _ in range(50):
            assert ctrl.admit_request(2, 0.1, 0.0) is None

    def test_limited_tier_refused_past_burst(self):
        ctrl = controller(OverloadPolicy(tier_rates={1: TierRate(1.0, 2.0)}))
        assert ctrl.admit_request(1, 0.1, 0.0) is None
        assert ctrl.admit_request(1, 0.1, 0.0) is None
        assert ctrl.admit_request(1, 0.1, 0.0) == REASON_RATE
        assert ctrl.rejected_requests == 1

    def test_registration_gate_is_independent(self):
        ctrl = controller(OverloadPolicy(
            registration_rates={1: TierRate(0.001, 1.0)}))
        assert ctrl.admit_query(1, 0.0) is None
        assert ctrl.admit_query(1, 0.0) == REASON_RATE
        # Request ingestion is untouched by the registration bucket.
        assert ctrl.admit_request(1, 0.1, 0.0) is None
        assert (ctrl.admitted_queries, ctrl.rejected_queries) == (1, 1)


class TestCapacityGate:
    POLICY = OverloadPolicy(capacity_horizon=10.0, utilization_cap=1.0,
                            capacity_protect_tier=3)

    def test_window_budget_is_fleet_times_horizon(self):
        ctrl = controller(self.POLICY, fleet=2)   # 20 device-seconds
        assert ctrl.admit_request(1, 15.0, 0.0) is None
        assert ctrl.admit_request(1, 10.0, 1.0) == REASON_CAPACITY
        assert ctrl.admit_request(1, 5.0, 1.0) is None

    def test_window_resets_on_next_horizon(self):
        ctrl = controller(self.POLICY, fleet=1)   # 10 device-seconds
        assert ctrl.admit_request(1, 10.0, 0.0) is None
        assert ctrl.admit_request(1, 1.0, 5.0) == REASON_CAPACITY
        assert ctrl.admit_request(1, 1.0, 10.0) is None   # new window

    def test_protected_tier_bypasses_but_still_commits(self):
        ctrl = controller(self.POLICY, fleet=1)
        assert ctrl.admit_request(3, 100.0, 0.0) is None  # bypass
        # The protected load was committed, so tier 1 now sees a full
        # window.
        assert ctrl.admit_request(1, 1.0, 0.0) == REASON_CAPACITY

    def test_deterministic_counters(self):
        def run():
            ctrl = controller(OverloadPolicy(
                tier_rates={1: TierRate(2.0, 2.0)},
                capacity_horizon=5.0, utilization_cap=0.5))
            outcomes = []
            for step in range(30):
                outcomes.append(ctrl.admit_request(
                    1 + step % 3, 0.7, step * 0.3))
            return outcomes, ctrl.admitted_requests, ctrl.rejected_requests
        assert run() == run()
