"""Unit tests for the load shedder: deadlines, hysteresis, protection."""

import pytest

from repro.actions.builtins import builtin_definitions
from repro.actions.request import ActionRequest, RequestState
from repro.core.tracing import EngineTracer
from repro.overload import LoadShedder, OverloadPolicy
from repro.overload.shedding import REASON_DEADLINE, REASON_PRESSURE
from repro.plan import SharedActionOperator
from repro.sim import Environment

POLICY = OverloadPolicy(shed_interval=1.0, shed_high_watermark=4,
                        shed_low_watermark=2, shed_protect_tier=3)


def make_request(request_id, *, priority=1, deadline=None, created_at=0.0):
    return ActionRequest(action_name="photo", arguments={},
                         candidates=("cam1",), request_id=request_id,
                         priority=priority, deadline=deadline,
                         created_at=created_at)


class Harness:
    def __init__(self, policy=POLICY):
        self.env = Environment()
        photo = next(d for d in builtin_definitions() if d.name == "photo")
        self.operator = SharedActionOperator(photo)
        self.shed_log = []
        self.tracer = EngineTracer()
        self.shedder = LoadShedder(
            self.env, policy, operators=lambda: [self.operator],
            shed=self._shed, tracer=self.tracer)

    def _shed(self, request, reason):
        request.mark_shed(self.env.now, reason)
        self.shed_log.append((request.request_id, reason))

    def fill(self, count, **kwargs):
        for i in range(count):
            self.operator.submit(make_request(f"r{i}", **kwargs))


def test_deadline_pass_sheds_expired_only():
    h = Harness()
    h.env.run(until=10.0)
    h.operator.submit(make_request("expired", deadline=5.0))
    h.operator.submit(make_request("alive", deadline=15.0))
    h.operator.submit(make_request("undated"))
    assert h.shedder.pass_once() == 1
    assert h.shed_log == [("expired", REASON_DEADLINE)]
    assert h.operator.pending_count == 2


def test_deadline_sheds_protected_tiers_too():
    h = Harness()
    h.env.run(until=10.0)
    h.operator.submit(make_request("vip", priority=9, deadline=5.0))
    h.shedder.pass_once()
    assert h.shed_log == [("vip", REASON_DEADLINE)]


def test_hysteresis_edges():
    h = Harness()
    h.fill(4)                              # exactly at high watermark
    assert h.shedder.pass_once() == 0
    assert not h.shedder.active            # > required, not >=
    h.operator.submit(make_request("tip")) # 5 > 4: activates
    assert h.shedder.pass_once() == 3      # down to low watermark 2
    assert not h.shedder.active            # reached low edge: stopped
    kinds = [r.kind for r in h.tracer]
    assert kinds == ["shedding_started", "shedding_stopped"]


def test_active_shedding_continues_below_high_watermark():
    h = Harness()
    h.fill(5)
    h.shedder.pass_once()                  # activate, drain to 2
    h.fill(1)                              # 3 pending: above low, below high
    # Re-activation needs the high watermark again — hysteresis means a
    # backlog in the dead band does not restart shedding.
    assert h.shedder.pass_once() == 0
    assert not h.shedder.active


def test_protected_tier_never_pressure_shed():
    h = Harness()
    h.fill(6, priority=3)
    shed = h.shedder.pass_once()
    assert shed == 0
    assert h.shedder.active                # backlog stuck above watermark
    assert h.operator.pending_count == 6


def test_pressure_sheds_worst_first():
    h = Harness()
    for request_id, priority, deadline in [
            ("keep_hi", 2, None), ("drop1", 1, 3.0), ("drop2", 1, None),
            ("keep_hi2", 2, 1.0), ("drop3", 1, 9.0)]:
        h.operator.submit(make_request(request_id, priority=priority,
                                       deadline=deadline))
    assert h.shedder.pass_once() == 3
    assert [entry[0] for entry in h.shed_log] == ["drop1", "drop3", "drop2"]
    assert all(reason == REASON_PRESSURE for _, reason in h.shed_log)
    assert {r.request_id for r in h.operator.pending_snapshot()} == \
        {"keep_hi", "keep_hi2"}


def test_periodic_process_runs_on_interval():
    h = Harness()
    h.fill(5)
    h.shedder.start()
    h.shedder.start()                      # idempotent
    h.env.run(until=3.5)
    assert h.shedder.shed_passes == 3
    assert h.operator.pending_count == 2
    assert h.shedder.pressure_shed_total == 3


def test_passes_are_deterministic():
    def run():
        h = Harness()
        for i in range(9):
            h.operator.submit(make_request(
                f"r{i}", priority=1 + i % 3,
                deadline=None if i % 2 else float(i), created_at=float(i)))
        h.env.run(until=4.0)
        h.shedder.pass_once()
        return h.shed_log, [r.request_id
                            for r in h.operator.pending_snapshot()]
    assert run() == run()
