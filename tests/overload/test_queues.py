"""Unit tests for bounded operator queues and eviction order."""

import pytest

from repro.errors import QueueFullError
from repro.actions.builtins import builtin_definitions
from repro.actions.request import ActionRequest
from repro.plan import SharedActionOperator


@pytest.fixture
def operator():
    photo = next(d for d in builtin_definitions() if d.name == "photo")
    op = SharedActionOperator(photo)
    op.limit = 2
    return op


def make_request(request_id, *, priority=1, deadline=None, created_at=0.0):
    return ActionRequest(action_name="photo", arguments={},
                         candidates=("cam1",), request_id=request_id,
                         priority=priority, deadline=deadline,
                         created_at=created_at)


def pending_ids(operator):
    return [r.request_id for r in operator.pending_snapshot()]


def test_unbounded_by_default():
    photo = next(d for d in builtin_definitions() if d.name == "photo")
    op = SharedActionOperator(photo)
    for i in range(500):
        op.submit(make_request(f"r{i}"))
    assert op.pending_count == 500
    assert op.total_rejected == op.total_evicted == 0


def test_full_queue_evicts_lowest_priority(operator):
    evicted = []
    operator.on_evict = lambda victim, reason: evicted.append(
        (victim.request_id, reason))
    operator.submit(make_request("low", priority=1))
    operator.submit(make_request("high", priority=3))
    operator.submit(make_request("mid", priority=2))
    assert evicted == [("low", "queue-evicted")]
    assert pending_ids(operator) == ["high", "mid"]
    assert operator.total_evicted == 1


def test_incoming_worst_is_rejected(operator):
    operator.submit(make_request("a", priority=2))
    operator.submit(make_request("b", priority=2))
    with pytest.raises(QueueFullError, match="least valuable"):
        operator.submit(make_request("worst", priority=1))
    assert pending_ids(operator) == ["a", "b"]
    assert operator.total_rejected == 1


def test_tie_breaks_on_earliest_deadline(operator):
    operator.submit(make_request("soon", priority=1, deadline=5.0))
    operator.submit(make_request("later", priority=1, deadline=9.0))
    operator.submit(make_request("undated", priority=1))
    # Same tier: the entry closest to expiring loses first.
    assert pending_ids(operator) == ["later", "undated"]


def test_undated_outranks_dated_within_tier(operator):
    operator.submit(make_request("undated", priority=1, created_at=0.0))
    operator.submit(make_request("dated", priority=1, deadline=100.0,
                                 created_at=1.0))
    with pytest.raises(QueueFullError):
        operator.submit(make_request("incoming", priority=1, deadline=50.0,
                                     created_at=2.0))
    operator.submit(make_request("keeper", priority=2, created_at=3.0))
    assert pending_ids(operator) == ["undated", "keeper"]


def test_peak_pending_high_water_mark(operator):
    operator.limit = None
    for i in range(4):
        operator.submit(make_request(f"r{i}"))
    operator.drain()
    operator.submit(make_request("after"))
    assert operator.peak_pending == 4
    assert operator.pending_count == 1


def test_discard_and_snapshot(operator):
    request = make_request("target")
    operator.submit(request)
    snapshot = operator.pending_snapshot()
    assert operator.discard(request) is True
    assert operator.discard(request) is False     # already gone
    assert operator.pending_count == 0
    assert snapshot == [request]                  # snapshot was a copy


def test_eviction_is_deterministic():
    def run():
        photo = next(d for d in builtin_definitions()
                     if d.name == "photo")
        op = SharedActionOperator(photo)
        op.limit = 3
        log = []
        op.on_evict = lambda victim, reason: log.append(victim.request_id)
        for i in range(12):
            try:
                op.submit(make_request(
                    f"r{i}", priority=1 + i % 3,
                    deadline=None if i % 4 == 0 else float(20 - i),
                    created_at=float(i)))
            except QueueFullError:
                log.append(f"reject:r{i}")
        return log, pending_ids(op)
    assert run() == run()
