"""Unit tests for the probing mechanism (paper Section 4)."""

import pytest

from tests.comm.conftest import run


def test_probe_online_camera_succeeds(env, layer, lab):
    result = run(env, layer.probe(lab["cam1"]))
    assert result.available
    assert set(result.status) == {"pan", "tilt", "zoom"}
    assert result.round_trip_seconds > 0


def test_probe_offline_device_unavailable_after_timeout(env, layer, lab):
    lab["cam1"].go_offline()
    result = run(env, layer.probe(lab["cam1"]))
    assert not result.available
    assert "timed out" in result.error
    # The probe burned exactly the camera TIMEOUT (1.0 s by default).
    assert env.now == pytest.approx(1.0)


def test_probe_uses_per_type_timeouts(env, layer, lab):
    lab["phone1"].go_offline()
    result = run(env, layer.probe(lab["phone1"]))
    assert not result.available
    assert env.now == pytest.approx(2.0)  # phone TIMEOUT


def test_probe_all_runs_in_parallel(env, layer, lab):
    lab["cam1"].go_offline()
    lab["cam2"].go_offline()
    results = run(env, layer.prober.probe_all([lab["cam1"], lab["cam2"]]))
    assert [r.available for r in results] == [False, False]
    # Parallel probing: both timeouts overlap, total is one TIMEOUT.
    assert env.now == pytest.approx(1.0)


def test_available_devices_excludes_malfunctioning(env, layer, lab):
    lab["cam2"].crash()
    available = run(env, layer.probe_candidates([lab["cam1"], lab["cam2"]]))
    assert [device.device_id for device, _ in available] == ["cam1"]


def test_probe_counters(env, layer, lab):
    lab["cam2"].go_offline()
    run(env, layer.prober.probe_all([lab["cam1"], lab["cam2"]]))
    assert layer.prober.probes_sent == 2
    assert layer.prober.probes_failed == 1


def test_probe_returns_status_for_cost_model(env, layer, lab):
    result = run(env, layer.probe(lab["mote2"]))
    assert result.available
    assert result.status["hop_depth"] == 2.0
