"""Unit tests for the probing mechanism (paper Section 4)."""

import pytest

from repro.devices.health import BreakerState, DeviceHealthTracker, HealthPolicy
from repro.network.message import Message, Response
from tests.comm.conftest import run


def test_probe_online_camera_succeeds(env, layer, lab):
    result = run(env, layer.probe(lab["cam1"]))
    assert result.available
    assert set(result.status) == {"pan", "tilt", "zoom"}
    assert result.round_trip_seconds > 0


def test_probe_offline_device_unavailable_after_timeout(env, layer, lab):
    lab["cam1"].go_offline()
    result = run(env, layer.probe(lab["cam1"]))
    assert not result.available
    assert "timed out" in result.error
    # The probe burned exactly the camera TIMEOUT (1.0 s by default).
    assert env.now == pytest.approx(1.0)


def test_probe_uses_per_type_timeouts(env, layer, lab):
    lab["phone1"].go_offline()
    result = run(env, layer.probe(lab["phone1"]))
    assert not result.available
    assert env.now == pytest.approx(2.0)  # phone TIMEOUT


def test_probe_all_runs_in_parallel(env, layer, lab):
    lab["cam1"].go_offline()
    lab["cam2"].go_offline()
    results = run(env, layer.prober.probe_all([lab["cam1"], lab["cam2"]]))
    assert [r.available for r in results] == [False, False]
    # Parallel probing: both timeouts overlap, total is one TIMEOUT.
    assert env.now == pytest.approx(1.0)


def test_available_devices_excludes_malfunctioning(env, layer, lab):
    lab["cam2"].crash()
    available = run(env, layer.probe_candidates([lab["cam1"], lab["cam2"]]))
    assert [device.device_id for device, _ in available] == ["cam1"]


def test_probe_counters(env, layer, lab):
    lab["cam2"].go_offline()
    run(env, layer.prober.probe_all([lab["cam1"], lab["cam2"]]))
    assert layer.prober.probes_sent == 2
    assert layer.prober.probes_failed == 1


def test_probe_returns_status_for_cost_model(env, layer, lab):
    result = run(env, layer.probe(lab["mote2"]))
    assert result.available
    assert result.status["hop_depth"] == 2.0


# ----------------------------------------------------------------------
# Failing-phase reporting
# ----------------------------------------------------------------------
def test_failed_probe_records_connect_phase(env, layer, lab):
    lab["cam1"].go_offline()
    result = run(env, layer.probe(lab["cam1"]))
    assert not result.available
    assert result.failed_phase == "connect"
    assert result.error.startswith("connect:")


def test_successful_probe_has_no_failed_phase(env, layer, lab):
    result = run(env, layer.probe(lab["cam1"]))
    assert result.available
    assert result.failed_phase == ""


class _FlakyStatusConnection:
    """Stub connection whose status exchange fails after a clean ping."""

    def __init__(self, env):
        self.env = env

    def request(self, message: Message, timeout):
        yield self.env.timeout(0.01)
        if message.kind == "status":
            return Response(device_id=message.device_id, ok=False,
                            error="status register corrupt")
        return Response(device_id=message.device_id, ok=True)

    def close(self):
        pass


def test_probe_records_later_phase_failures(env, layer, lab):
    class _FlakyTransport:
        def connect(self, device, timeout):
            yield env.timeout(0.01)
            return _FlakyStatusConnection(env)

        def open(self, device, timeout):
            return (yield from self.connect(device, timeout))

        def release(self, connection):
            connection.close()

        def discard(self, connection):
            connection.close()

    layer.prober.transport = _FlakyTransport()
    result = run(env, layer.probe(lab["cam1"]))
    assert not result.available
    assert result.failed_phase == "status"
    assert "status register corrupt" in result.error


def test_reset_stats_zeroes_probe_counters(env, layer, lab):
    lab["cam2"].go_offline()
    run(env, layer.prober.probe_all([lab["cam1"], lab["cam2"]]))
    assert (layer.prober.probes_sent, layer.prober.probes_failed) == (2, 1)
    layer.prober.reset_stats()
    assert (layer.prober.probes_sent, layer.prober.probes_failed) == (0, 0)
    run(env, layer.probe(lab["cam1"]))
    assert (layer.prober.probes_sent, layer.prober.probes_failed) == (1, 0)


# ----------------------------------------------------------------------
# probe_all ordering under mixed timeouts
# ----------------------------------------------------------------------
def test_probe_all_preserves_input_order_under_mixed_timeouts(
        env, layer, lab):
    # phone1 times out after 2.0s, mote1 after 0.5s, cameras answer
    # fast: completion order differs wildly from input order.
    lab["phone1"].go_offline()
    lab["mote1"].go_offline()
    devices = [lab["phone1"], lab["cam1"], lab["mote1"], lab["cam2"]]
    results = run(env, layer.prober.probe_all(devices))
    assert [r.device_id for r in results] \
        == ["phone1", "cam1", "mote1", "cam2"]
    assert [r.available for r in results] == [False, True, False, True]
    # Concurrent: total wall time is the slowest timeout, not the sum.
    assert env.now == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Phone coverage dropouts
# ----------------------------------------------------------------------
def test_phone_out_of_coverage_probes_unavailable(env, layer, lab):
    phone = lab["phone1"]
    phone.leave_coverage()
    result = run(env, layer.probe(phone))
    # Powered and healthy, but the carrier cannot page it.
    assert phone.online and not phone.reachable
    assert not result.available
    assert result.failed_phase == "connect"

    phone.enter_coverage()
    result = run(env, layer.probe(phone))
    assert result.available


def test_coverage_dropout_quarantines_then_readmits_phone(env, layer, lab):
    health = DeviceHealthTracker(
        env, HealthPolicy(failure_threshold=2, quarantine_seconds=5.0))
    layer.prober.health = health
    phone = lab["phone1"]
    phone.leave_coverage()
    run(env, layer.probe(phone))
    run(env, layer.probe(phone))
    # Two consecutive probe misses: the breaker opens.
    assert health.state_of("phone1") is BreakerState.OPEN
    assert not health.allow_candidate("phone1")

    phone.enter_coverage()
    env.run(until=env.now + 6.0)
    # Window expired: the phone is allowed back on probation, and the
    # probation probe succeeds, readmitting it.
    assert health.allow_candidate("phone1")
    result = run(env, layer.probe(phone))
    assert result.available
    assert health.state_of("phone1") is BreakerState.CLOSED
    assert health.recoveries_total == 1
