"""ConnectionPool: keep-alive reuse, expiry, LRU capping, invalidation."""

import pytest

from repro.errors import CommunicationError
from repro.comm.pool import ConnectionPool
from repro.network.message import Message

from tests.comm.conftest import run


@pytest.fixture
def pool(env, layer):
    pool = ConnectionPool(env, layer.transport, capacity=3,
                          idle_seconds=10.0)
    layer.transport.pool = pool
    return pool


def checkout(env, transport, device, timeout=1.0):
    return run(env, transport.open(device, timeout))


class TestCheckout:
    def test_first_checkout_is_a_miss_that_connects(self, env, layer,
                                                    lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        assert not connection.closed
        assert pool.misses == 1 and pool.hits == 0
        assert layer.transport.connects_attempted == 1

    def test_release_then_checkout_reuses_without_handshake(
            self, env, layer, lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.release(connection)
        assert len(pool) == 1
        again = checkout(env, layer.transport, lab["cam1"])
        assert again is connection
        assert pool.hits == 1
        # No second handshake was paid.
        assert layer.transport.connects_attempted == 1

    def test_pooled_connection_still_serves_requests(self, env, layer,
                                                     lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.release(connection)
        again = checkout(env, layer.transport, lab["cam1"])
        response = run(env, again.request(
            Message(kind="ping", device_id="cam1"), 1.0))
        assert response.ok

    def test_concurrent_checkouts_open_extra_connections(
            self, env, layer, lab, pool):
        first = checkout(env, layer.transport, lab["cam1"])
        second = checkout(env, layer.transport, lab["cam1"])
        assert first is not second
        # Parking both: the second is surplus and gets closed.
        layer.transport.release(first)
        layer.transport.release(second)
        assert len(pool) == 1
        assert second.closed and not first.closed
        assert pool.discards == 1


class TestExpiry:
    def test_idle_connection_expires_after_idle_seconds(self, env, layer,
                                                        lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.release(connection)
        env.run(until=env.now + 11.0)  # past idle_seconds=10
        fresh = checkout(env, layer.transport, lab["cam1"])
        assert fresh is not connection
        assert connection.closed
        assert pool.expired == 1
        assert layer.transport.connects_attempted == 2

    def test_connection_at_exact_idle_boundary_survives(self, env, layer,
                                                        lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.release(connection)
        env.run(until=env.now + 10.0)  # exactly idle_seconds
        assert checkout(env, layer.transport, lab["cam1"]) is connection


class TestCapacity:
    def test_lru_eviction_closes_least_recently_released(self, env, layer,
                                                         lab, pool):
        order = ["cam1", "cam2", "mote1", "mote2"]  # capacity is 3
        held = {name: checkout(env, layer.transport, lab[name])
                for name in order}
        for name in order:
            layer.transport.release(held[name])
        assert len(pool) == 3
        assert held["cam1"].closed           # oldest release evicted
        assert pool.evictions == 1
        # The evicted device reconnects; the survivors are hits.
        assert checkout(env, layer.transport, lab["cam2"]) is held["cam2"]
        fresh = checkout(env, layer.transport, lab["cam1"])
        assert fresh is not held["cam1"]

    def test_validation(self, env, layer):
        with pytest.raises(CommunicationError, match="capacity"):
            ConnectionPool(env, layer.transport, capacity=0)
        with pytest.raises(CommunicationError, match="idle_seconds"):
            ConnectionPool(env, layer.transport, idle_seconds=0.0)


class TestInvalidation:
    def test_invalidate_closes_and_drops_the_idle_channel(self, env, layer,
                                                          lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.release(connection)
        pool.invalidate("cam1", reason="breaker-open")
        assert connection.closed
        assert len(pool) == 0
        assert pool.invalidations == 1

    def test_invalidate_unknown_device_is_a_noop(self, pool):
        pool.invalidate("nobody")
        assert pool.invalidations == 0

    def test_discard_never_parks_the_channel(self, env, layer, lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.discard(connection)
        assert connection.closed
        assert len(pool) == 0

    def test_close_all(self, env, layer, lab, pool):
        for name in ("cam1", "cam2"):
            layer.transport.release(
                checkout(env, layer.transport, lab[name]))
        pool.close_all()
        assert len(pool) == 0


class TestStats:
    def test_hit_rate_and_stats_shape(self, env, layer, lab, pool):
        connection = checkout(env, layer.transport, lab["cam1"])
        layer.transport.release(connection)
        checkout(env, layer.transport, lab["cam1"])
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert pool.hit_rate == 0.5

    def test_empty_pool_hit_rate_is_zero(self, pool):
        assert pool.hit_rate == 0.0
