"""DeviceStatusCache: TTL freshness, copies, invalidation, counters."""

import pytest

from repro.errors import CommunicationError
from repro.comm.status_cache import DEFAULT_STATUS_TTLS, DeviceStatusCache


@pytest.fixture
def cache(env):
    return DeviceStatusCache(env, default_ttl=5.0)


class TestLookup:
    def test_miss_on_unknown_device(self, cache, lab):
        assert cache.lookup(lab["cam1"]) is None
        assert cache.misses == 1

    def test_fresh_entry_hits(self, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        assert cache.lookup(lab["cam1"]) == {"pan": 10.0}
        assert cache.hits == 1

    def test_lookup_returns_a_copy(self, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        cache.lookup(lab["cam1"])["pan"] = 999.0
        assert cache.lookup(lab["cam1"]) == {"pan": 10.0}

    def test_store_copies_its_input(self, cache, lab):
        status = {"pan": 10.0}
        cache.store(lab["cam1"], status)
        status["pan"] = 999.0
        assert cache.lookup(lab["cam1"]) == {"pan": 10.0}

    def test_entry_expires_after_its_type_ttl(self, env, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        env.run(until=DEFAULT_STATUS_TTLS["camera"] + 0.5)
        assert cache.lookup(lab["cam1"]) is None
        assert cache.expired == 1
        assert len(cache) == 0  # expired entries are swept on lookup

    def test_entry_at_exact_ttl_boundary_is_fresh(self, env, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        env.run(until=DEFAULT_STATUS_TTLS["camera"])
        assert cache.lookup(lab["cam1"]) is not None

    def test_per_type_ttls_differ(self, env, cache, lab):
        cache.store(lab["cam1"], {"pan": 1.0})     # camera: 10s
        cache.store(lab["mote1"], {"battery": 0.9})  # sensor: 3s
        env.run(until=4.0)
        assert cache.lookup(lab["mote1"]) is None
        assert cache.lookup(lab["cam1"]) is not None

    def test_unknown_type_uses_default_ttl(self, env, cache):
        assert cache.ttl_for("toaster") == 5.0


class TestInvalidation:
    def test_invalidate_drops_the_entry(self, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        cache.invalidate("cam1", reason="execution")
        assert cache.lookup(lab["cam1"]) is None
        assert cache.invalidations == 1

    def test_invalidate_absent_entry_is_a_noop(self, cache):
        cache.invalidate("nobody")
        assert cache.invalidations == 0

    def test_clear(self, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        cache.store(lab["mote1"], {"battery": 0.9})
        cache.clear()
        assert len(cache) == 0


class TestValidationAndStats:
    def test_ttls_must_be_positive(self, env):
        with pytest.raises(CommunicationError, match="default_ttl"):
            DeviceStatusCache(env, default_ttl=0.0)
        with pytest.raises(CommunicationError, match="camera"):
            DeviceStatusCache(env, ttls={"camera": -1.0})

    def test_stats_shape(self, env, cache, lab):
        cache.store(lab["cam1"], {"pan": 10.0})
        cache.lookup(lab["cam1"])
        cache.lookup(lab["mote1"])
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["stores"] == 1
        assert stats["entries"] == 1
