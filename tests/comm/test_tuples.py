"""Unit tests for device tuples and schema validation."""

import pytest

from repro.errors import ProfileError
from repro.comm.tuples import DeviceTuple
from repro.profiles import AttributeSpec, DeviceCatalog


def make_catalog():
    return DeviceCatalog(
        device_type="sensor",
        attributes=[
            AttributeSpec("id", "str", sensory=False),
            AttributeSpec("accel_x", "float", sensory=True,
                          acquisition_method="read"),
            AttributeSpec("count", "int", sensory=False),
            AttributeSpec("armed", "bool", sensory=False),
        ],
    )


def good_tuple():
    return DeviceTuple("sensor", "m1", {
        "id": "m1", "accel_x": 1.5, "count": 3, "armed": True})


def test_valid_tuple_passes():
    good_tuple().validate(make_catalog())


def test_int_accepted_where_float_declared():
    row = good_tuple()
    row.values["accel_x"] = 2  # int into float column: SQL coercion
    row.validate(make_catalog())


def test_bool_not_accepted_as_int():
    row = good_tuple()
    row.values["count"] = True
    with pytest.raises(ProfileError, match="expected int"):
        row.validate(make_catalog())


def test_int_not_accepted_as_bool():
    row = good_tuple()
    row.values["armed"] = 1
    with pytest.raises(ProfileError, match="expected bool"):
        row.validate(make_catalog())


def test_missing_attribute_rejected():
    row = good_tuple()
    del row.values["count"]
    with pytest.raises(ProfileError, match="missing attribute"):
        row.validate(make_catalog())


def test_wrong_device_type_rejected():
    row = DeviceTuple("camera", "c1", {})
    with pytest.raises(ProfileError, match="validated against"):
        row.validate(make_catalog())


def test_wrong_string_type_rejected():
    row = good_tuple()
    row.values["id"] = 42
    with pytest.raises(ProfileError, match="expected str"):
        row.validate(make_catalog())


def test_get_and_contains():
    row = good_tuple()
    assert "id" in row
    assert "ghost" not in row
    assert row.get("ghost", "fallback") == "fallback"
    assert row.get("id") == "m1"
