"""Shared fixtures for communication-layer tests: a small pervasive lab."""

import random

import pytest

from repro.geometry import Point
from repro.devices import MobilePhone, PanTiltZoomCamera, SensorMote
from repro.comm import CommunicationLayer
from repro.network import LinkModel
from repro.profiles.defaults import register_builtin_types
from repro.sim import Environment

#: Deterministic lossless links so timing assertions are exact.
LOSSLESS_LINKS = {
    "camera": LinkModel(latency_seconds=0.005),
    "sensor": LinkModel(latency_seconds=0.02),
    "phone": LinkModel(latency_seconds=0.3),
}


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def layer(env):
    layer = CommunicationLayer(env, links=dict(LOSSLESS_LINKS),
                               rng=random.Random(0))
    register_builtin_types(layer)
    return layer


@pytest.fixture
def lab(env, layer):
    """Two cameras, three motes, one phone — a miniature pervasive lab."""
    devices = {
        "cam1": PanTiltZoomCamera(env, "cam1", Point(0, 0)),
        "cam2": PanTiltZoomCamera(env, "cam2", Point(20, 0), facing=180.0),
        "mote1": SensorMote(env, "mote1", Point(5, 5),
                            noise_amplitude=0.0, rng=random.Random(1)),
        "mote2": SensorMote(env, "mote2", Point(10, 5), hop_depth=2,
                            noise_amplitude=0.0, rng=random.Random(2)),
        "mote3": SensorMote(env, "mote3", Point(15, 5), hop_depth=3,
                            noise_amplitude=0.0, rng=random.Random(3)),
        "phone1": MobilePhone(env, "phone1", Point(0, 0),
                              number="+85290000000"),
    }
    for device in devices.values():
        layer.add_device(device)
    return devices


def run(env, generator):
    """Run a generator to completion inside the simulation; return value."""
    box = []

    def proc(env):
        value = yield from generator
        box.append(value)

    env.process(proc(env))
    env.run()
    return box[0] if box else None
