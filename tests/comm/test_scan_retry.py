"""Scan retry behaviour: one transient failure does not drop a row."""

import pytest

from repro.errors import DeviceError
from repro.geometry import Point
from repro.devices import SensorMote
from tests.comm.conftest import run


class FlakyMote(SensorMote):
    """Fails its first N sensory reads, then behaves."""

    def __init__(self, *args, failures=1, **kwargs):
        super().__init__(*args, **kwargs)
        self._failures_left = failures

    def read_sensory(self, name):
        if self._failures_left > 0:
            self._failures_left -= 1
            raise DeviceError(f"{self.device_id}: transient glitch")
        return super().read_sensory(name)


def test_single_transient_failure_retried(env, layer):
    layer.add_device(FlakyMote(env, "flaky", Point(0, 0),
                               noise_amplitude=0.0, failures=1))
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    assert [row.device_id for row in rows] == ["flaky"]
    assert operator.skipped == []


def test_persistent_failure_skips_with_reason(env, layer):
    layer.add_device(FlakyMote(env, "broken", Point(0, 0),
                               noise_amplitude=0.0, failures=100))
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    assert rows == []
    assert operator.skipped[0][0] == "broken"
    assert "glitch" in operator.skipped[0][1]


def test_retry_does_not_duplicate_rows(env, layer, lab):
    """Healthy devices appear exactly once even when another retries."""
    layer.add_device(FlakyMote(env, "flaky", Point(1, 1),
                               noise_amplitude=0.0, failures=1))
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    ids = [row.device_id for row in rows]
    assert sorted(ids) == ["flaky", "mote1", "mote2", "mote3"]
    assert len(ids) == len(set(ids))
