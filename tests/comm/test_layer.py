"""Unit tests for the communication-layer facade and adapters."""

import pytest

from repro.errors import (
    CommunicationError,
    DeviceError,
    ProfileError,
    RegistrationError,
)
from repro.geometry import Point
from repro.devices import HeadPosition, PanTiltZoomCamera
from repro.comm import CameraCommunicator, PhoneCommunicator, SensorCommunicator
from repro.network.message import Message
from tests.comm.conftest import run


def test_registered_types(layer):
    assert layer.registered_types() == ["camera", "phone", "sensor"]


def test_duplicate_type_registration_rejected(layer):
    from repro.profiles.defaults import camera_catalog, camera_cost_table
    with pytest.raises(RegistrationError, match="already registered"):
        layer.register_device_type(camera_catalog(), camera_cost_table())


def test_unknown_type_lookup_raises(layer):
    with pytest.raises(ProfileError, match="not registered"):
        layer.catalog("toaster")


def test_add_device_of_unregistered_type_rejected(env, layer):
    class Toaster(PanTiltZoomCamera):
        device_type = "toaster"

    with pytest.raises(RegistrationError, match="register device type"):
        layer.add_device(Toaster(env, "t1", Point(0, 0)))


def test_cost_table_lookup(layer):
    table = layer.cost_table("camera")
    assert "capture_medium" in table


def test_execute_runs_operation_via_network(env, layer, lab):
    outcome = run(env, layer.execute(lab["cam1"], "store"))
    assert outcome.succeeded
    assert outcome.operation == "store"
    # Network latency on top of the 0.1 s device-side store.
    assert env.now > 0.1


def test_execute_device_error_surfaces(env, layer, lab):
    with pytest.raises(DeviceError, match="no operation"):
        run(env, layer.execute(lab["cam1"], "teleport"))


def test_camera_communicator_move_and_capture(env, layer, lab):
    communicator = layer.communicator(lab["cam1"])
    assert isinstance(communicator, CameraCommunicator)

    def proc(env):
        yield from communicator.connect()
        yield from communicator.move_head(HeadPosition(pan=34, tilt=0, zoom=1))
        outcome = yield from communicator.capture("medium")
        communicator.close()
        return outcome

    outcome = run(env, proc(env))
    assert outcome.detail.size == "medium"
    assert lab["cam1"].head_position().pan == pytest.approx(34.0)


def test_sensor_communicator_read_sample(env, layer, lab):
    communicator = layer.communicator(lab["mote1"])
    assert isinstance(communicator, SensorCommunicator)

    def proc(env):
        yield from communicator.connect()
        outcome = yield from communicator.read_sample()
        communicator.close()
        return outcome

    outcome = run(env, proc(env))
    assert "temperature" in outcome.detail


def test_phone_communicator_deliver_mms(env, layer, lab):
    communicator = layer.communicator(lab["phone1"])
    assert isinstance(communicator, PhoneCommunicator)

    def proc(env):
        yield from communicator.connect()
        yield from communicator.deliver_mms(
            "aorta", "snapshot", "photos/x.jpg", size_kb=50)
        communicator.close()

    run(env, proc(env))
    assert lab["phone1"].inbox[0].attachment == "photos/x.jpg"


def test_send_receive_pipelining(env, layer, lab):
    """send() twice then receive() twice: responses come back in order."""
    communicator = layer.communicator(lab["cam1"])

    def proc(env):
        yield from communicator.connect()
        yield from communicator.send(Message(
            kind="read_attribute", device_id="cam1", payload={"name": "pan"}))
        yield from communicator.send(Message(
            kind="read_attribute", device_id="cam1", payload={"name": "zoom"}))
        first = yield from communicator.receive()
        second = yield from communicator.receive()
        communicator.close()
        return (first.value, second.value)

    pan, zoom = run(env, proc(env))
    assert pan == pytest.approx(0.0)
    assert zoom == pytest.approx(1.0)


def test_receive_without_send_rejected(env, layer, lab):
    communicator = layer.communicator(lab["cam1"])

    def proc(env):
        yield from communicator.connect()
        with pytest.raises(CommunicationError, match="no\\s+outstanding"):
            next(communicator.receive())
        communicator.close()

    run(env, proc(env))


def test_send_without_connect_rejected(env, layer, lab):
    communicator = layer.communicator(lab["cam1"])
    with pytest.raises(CommunicationError, match="not connected"):
        next(communicator.send(Message(kind="ping", device_id="cam1")))


def test_connect_is_idempotent(env, layer, lab):
    communicator = layer.communicator(lab["cam1"])

    def proc(env):
        yield from communicator.connect()
        first = communicator._connection
        yield from communicator.connect()
        assert communicator._connection is first
        communicator.close()

    run(env, proc(env))
    assert not communicator.connected


def test_remove_device(env, layer, lab):
    layer.remove_device("mote3")
    assert [d.device_id for d in layer.devices_of_type("sensor")] == [
        "mote1", "mote2"]
