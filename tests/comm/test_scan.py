"""Unit tests for scan operators over virtual device tables."""

import pytest

from repro.errors import QueryError
from repro.devices import SensorStimulus
from tests.comm.conftest import run


def test_scan_sensor_table_produces_all_rows(env, layer, lab):
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    assert [row.device_id for row in rows] == ["mote1", "mote2", "mote3"]
    for row in rows:
        row.validate(layer.catalog("sensor"))


def test_scan_reads_live_sensory_values(env, layer, lab):
    lab["mote1"].inject(SensorStimulus("accel_x", start=0.0, duration=100.0,
                                       magnitude=800.0))
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    by_id = {row.device_id: row for row in rows}
    assert by_id["mote1"]["accel_x"] == pytest.approx(800.0)
    assert by_id["mote2"]["accel_x"] == pytest.approx(0.0)


def test_scan_includes_static_attributes(env, layer, lab):
    operator = layer.scan_operator("camera")
    rows = run(env, operator.scan())
    by_id = {row.device_id: row for row in rows}
    assert by_id["cam1"]["loc_x"] == 0.0
    assert by_id["cam2"]["loc_x"] == 20.0
    assert by_id["cam1"]["ip"]


def test_scan_skips_offline_devices(env, layer, lab):
    lab["mote2"].go_offline()
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    assert [row.device_id for row in rows] == ["mote1", "mote3"]


def test_scan_skips_dead_battery_device_with_reason(env, layer, lab):
    lab["mote3"].battery_volts = 1.5
    operator = layer.scan_operator("sensor")
    rows = run(env, operator.scan())
    assert [row.device_id for row in rows] == ["mote1", "mote2"]
    assert operator.skipped and operator.skipped[0][0] == "mote3"
    assert "battery dead" in operator.skipped[0][1]


def test_scan_acquires_rows_in_parallel(env, layer, lab):
    operator = layer.scan_operator("sensor")
    run(env, operator.scan())
    # 5 sensory attributes + connect = 6 round trips of 0.04 s each; a
    # sequential scan over three motes would take 3x as long.
    assert env.now < 0.3


def test_scan_device_returns_single_row(env, layer, lab):
    operator = layer.scan_operator("camera")
    row = run(env, operator.scan_device("cam2"))
    assert row.device_id == "cam2"
    assert row["pan"] == pytest.approx(0.0)


def test_scan_device_offline_returns_none(env, layer, lab):
    lab["cam2"].go_offline()
    operator = layer.scan_operator("camera")
    assert run(env, operator.scan_device("cam2")) is None


def test_tuple_unknown_attribute_raises(env, layer, lab):
    operator = layer.scan_operator("camera")
    rows = run(env, operator.scan())
    with pytest.raises(QueryError, match="no attribute"):
        rows[0]["altitude"]


def test_tuples_produced_counter(env, layer, lab):
    operator = layer.scan_operator("phone")
    run(env, operator.scan())
    run(env, operator.scan())
    assert operator.tuples_produced == 2
