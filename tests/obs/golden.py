"""The golden-trace conformance harness.

The dump and diff primitives live in :mod:`repro.obs.dump` (the
parallel shard workers reuse them in-process, so they are part of the
library, not the test suite); this module keeps the golden-file side —
recording, loading and asserting against checked-in goldens — plus
re-exports of the primitives for the existing test/benchmark imports.

Regenerating goldens after an intentional behaviour change::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs -q
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.dump import (  # noqa: F401  (re-exported harness surface)
    _RequestIdNormalizer,
    diff_dumps,
    dump_engine,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


# ----------------------------------------------------------------------
# Golden files
# ----------------------------------------------------------------------
def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def save_golden(name: str, dump: Dict[str, Any]) -> str:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    path = golden_path(name)
    with open(path, "w") as handle:
        json.dump(dump, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_golden(name: str) -> Optional[Dict[str, Any]]:
    path = golden_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Asserting
# ----------------------------------------------------------------------
def render_diff(name: str, differences: List[str]) -> str:
    header = (f"run does not match golden {name!r} "
              f"({len(differences)} difference line(s)):")
    return "\n".join([header] + [f"  {line}" for line in differences])


def assert_golden(name: str, dump: Dict[str, Any]) -> None:
    """Assert ``dump`` matches the checked-in golden ``name``.

    With ``UPDATE_GOLDENS=1`` in the environment, (re)writes the golden
    instead of asserting — for recording intentional changes.
    """
    # Round-trip through JSON so tuples/ints compare like the file does.
    dump = json.loads(json.dumps(dump))
    if os.environ.get("UPDATE_GOLDENS"):
        path = save_golden(name, dump)
        print(f"golden {name!r} updated at {path}")
        return
    golden = load_golden(name)
    assert golden is not None, (
        f"no golden {name!r}; record one with UPDATE_GOLDENS=1")
    differences = diff_dumps(golden, dump)
    assert not differences, render_diff(name, differences)
