"""The golden-trace conformance harness.

The simulation clock is virtual and every RNG is seeded, so a scenario
run is a pure function of the code: the engine trace, the statistics
dict, the serviced-request set and (with observability on) the span
tree and metric snapshot are all bit-reproducible. This module turns
that into a regression artifact: :func:`dump_engine` produces a
normalized JSON-able dump of a finished run, :func:`assert_golden`
diffs it against a checked-in golden file and fails with a readable
delta on mismatch.

Regenerating goldens after an intentional behaviour change::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/obs -q

Normalization: auto-assigned request ids (``req<N>`` from the global
counter) depend on how many requests earlier tests created in the same
process, so dumps renumber them ``R1, R2, ...`` in order of first
appearance. Metrics whose name contains ``wallclock`` are dropped —
they measure host time, not virtual time, and are not reproducible.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Auto-assigned request ids (actions/request.py global counter).
_AUTO_REQUEST_ID = re.compile(r"^req\d+$")

#: Metric-name fragment marking host-clock measurements to exclude.
_WALLCLOCK = "wallclock"


# ----------------------------------------------------------------------
# Dumping
# ----------------------------------------------------------------------
def _json_safe(value: Any) -> Any:
    """A deterministic JSON-able rendering of one trace field value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


class _RequestIdNormalizer:
    """Renumbers auto-assigned request ids in first-appearance order."""

    def __init__(self) -> None:
        self._mapping: Dict[str, str] = {}

    def __call__(self, value: Any) -> Any:
        if isinstance(value, str) and _AUTO_REQUEST_ID.match(value):
            if value not in self._mapping:
                self._mapping[value] = f"R{len(self._mapping) + 1}"
            return self._mapping[value]
        return value


def dump_engine(engine) -> Dict[str, Any]:
    """A normalized, JSON-able dump of one finished scenario run.

    Contains the full trace log, the engine statistics dict, the sorted
    serviced-request id list and, when the engine has observability
    enabled, the deterministic metric snapshot (wall-clock metrics
    excluded).
    """
    normalize = _RequestIdNormalizer()
    trace: List[Dict[str, Any]] = []
    for record in engine.tracer:
        trace.append({
            "at": record.at,
            "kind": record.kind,
            "fields": {
                key: normalize(_json_safe(value))
                for key, value in sorted(record.fields.items())
            },
        })
    serviced = sorted(
        normalize(request.request_id)
        for request in engine.completed_requests
        if request.state.value == "serviced"
    )
    dump: Dict[str, Any] = {
        "trace": trace,
        "statistics": _json_safe(engine.statistics()),
        "serviced": serviced,
    }
    obs = getattr(engine, "obs", None)
    if obs is not None and getattr(obs, "enabled", False):
        snapshot = obs.registry.snapshot()
        dump["metrics"] = {
            section: {
                key: value for key, value in sorted(entries.items())
                if _WALLCLOCK not in key
            }
            for section, entries in snapshot.items()
        }
    return dump


# ----------------------------------------------------------------------
# Golden files
# ----------------------------------------------------------------------
def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def save_golden(name: str, dump: Dict[str, Any]) -> str:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    path = golden_path(name)
    with open(path, "w") as handle:
        json.dump(dump, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_golden(name: str) -> Optional[Dict[str, Any]]:
    path = golden_path(name)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_dumps(expected: Any, actual: Any, *, limit: int = 25) -> List[str]:
    """Human-readable differences between two dumps, path by path.

    Empty when the dumps are identical. Collection size mismatches are
    reported once per container; leaf mismatches as
    ``path: golden <x> != actual <y>``. At most ``limit`` lines, with a
    trailing ``... and N more`` marker when truncated.
    """
    differences: List[str] = []

    def walk(path: str, left: Any, right: Any) -> None:
        if isinstance(left, dict) and isinstance(right, dict):
            for key in sorted(set(left) | set(right)):
                sub = f"{path}.{key}" if path else str(key)
                if key not in left:
                    differences.append(
                        f"{sub}: only in actual ({right[key]!r})")
                elif key not in right:
                    differences.append(
                        f"{sub}: only in golden ({left[key]!r})")
                else:
                    walk(sub, left[key], right[key])
            return
        if isinstance(left, list) and isinstance(right, list):
            if len(left) != len(right):
                differences.append(
                    f"{path}: golden has {len(left)} entries, actual "
                    f"has {len(right)}")
            for index in range(min(len(left), len(right))):
                walk(f"{path}[{index}]", left[index], right[index])
            return
        if type(left) is not type(right) or left != right:
            differences.append(
                f"{path}: golden {left!r} != actual {right!r}")

    walk("", expected, actual)
    if len(differences) > limit:
        overflow = len(differences) - limit
        differences = differences[:limit]
        differences.append(f"... and {overflow} more difference(s)")
    return differences


def render_diff(name: str, differences: List[str]) -> str:
    header = (f"run does not match golden {name!r} "
              f"({len(differences)} difference line(s)):")
    return "\n".join([header] + [f"  {line}" for line in differences])


def assert_golden(name: str, dump: Dict[str, Any]) -> None:
    """Assert ``dump`` matches the checked-in golden ``name``.

    With ``UPDATE_GOLDENS=1`` in the environment, (re)writes the golden
    instead of asserting — for recording intentional changes.
    """
    # Round-trip through JSON so tuples/ints compare like the file does.
    dump = json.loads(json.dumps(dump))
    if os.environ.get("UPDATE_GOLDENS"):
        path = save_golden(name, dump)
        print(f"golden {name!r} updated at {path}")
        return
    golden = load_golden(name)
    assert golden is not None, (
        f"no golden {name!r}; record one with UPDATE_GOLDENS=1")
    differences = diff_dumps(golden, dump)
    assert not differences, render_diff(name, differences)
