"""Property tests of the metrics layer (hypothesis).

Three invariants the observability design leans on:

* histogram merge is associative and commutative, so sharded
  registries combine in any order and still agree byte-for-byte;
* snapshots are idempotent — reading a registry never perturbs it;
* engine counters are monotone across ``run()`` calls — resuming a run
  only ever adds.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry

values = st.lists(
    st.floats(min_value=0.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
    max_size=30)


def _hist_of(observations):
    hist = Histogram(buckets=(0.1, 1.0, 10.0, 100.0))
    for value in observations:
        hist.observe(value)
    return hist


def _state(hist):
    return (hist.counts, hist.total, hist.count, hist.min, hist.max)


@given(values, values)
def test_histogram_merge_commutative(xs, ys):
    ab = _hist_of(xs)
    ab.merge(_hist_of(ys))
    ba = _hist_of(ys)
    ba.merge(_hist_of(xs))
    assert ab.counts == ba.counts
    assert ab.count == ba.count
    assert (ab.min, ab.max) == (ba.min, ba.max)
    assert abs(ab.total - ba.total) <= 1e-9 * max(1.0, abs(ab.total))


@given(values, values, values)
def test_histogram_merge_associative(xs, ys, zs):
    left = _hist_of(xs)
    left.merge(_hist_of(ys))
    left.merge(_hist_of(zs))
    inner = _hist_of(ys)
    inner.merge(_hist_of(zs))
    right = _hist_of(xs)
    right.merge(inner)
    assert left.counts == right.counts
    assert left.count == right.count
    assert (left.min, left.max) == (right.min, right.max)
    assert abs(left.total - right.total) \
        <= 1e-9 * max(1.0, abs(left.total))


@given(values, values)
def test_registry_merge_commutative_snapshot(xs, ys):
    def build(observations, start):
        registry = MetricsRegistry()
        for value in observations:
            registry.counter("events", kind="tick").inc()
            registry.histogram("latency", (0.1, 1.0, 10.0, 100.0),
                               kind="tick").observe(value)
        registry.gauge("level").set(start)
        return registry

    ab = build(xs, 1.0)
    ab.merge(build(ys, 2.0))
    ba = build(ys, 2.0)
    ba.merge(build(xs, 1.0))
    assert json.dumps(ab.snapshot(), sort_keys=True) \
        == json.dumps(ba.snapshot(), sort_keys=True)


ops = st.lists(
    st.tuples(st.sampled_from(["inc", "observe", "gauge"]),
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False)),
    max_size=40)


@given(ops)
def test_snapshot_idempotent(operations):
    registry = MetricsRegistry()
    for op, value in operations:
        if op == "inc":
            registry.counter("count", op=op).inc(value)
        elif op == "observe":
            registry.histogram("dist", op=op).observe(value)
        else:
            registry.gauge("level", op=op).set(value)
    first = registry.snapshot()
    second = registry.snapshot()
    assert first == second
    # And reading did not perturb the registry itself.
    assert registry.snapshot() == first


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=1, max_value=4))
def test_engine_counters_monotone_across_runs(splits):
    """Running the engine further only ever increases counters."""
    from repro import (
        AortaEngine, EngineConfig, Environment, PanTiltZoomCamera,
        Point, SensorMote, SensorStimulus,
    )
    env = Environment()
    engine = AortaEngine(env, config=EngineConfig(observability=True))
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0)))
    mote = SensorMote(env, "mote1", Point(5, 3), noise_amplitude=0.0)
    engine.add_device(mote)
    engine.execute('''CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=3.0,
                               magnitude=850.0))
    engine.start()
    horizon = 24.0
    previous = {}
    for stop in range(1, splits + 1):
        engine.run(until=horizon * stop / splits)
        counters = engine.metrics()["counters"]
        for key, floor in previous.items():
            assert counters.get(key, 0.0) >= floor, key
        previous = counters
