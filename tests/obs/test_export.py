"""Tests of the exporters (repro.obs.export)."""

import json

from repro.core.tracing import EngineTracer
from repro.obs import (
    MetricsRegistry,
    Observability,
    metrics_to_json,
    metrics_to_text,
    span_records,
    span_tree_text,
    spans_to_json,
)
from repro.sim import Environment


def small_registry():
    registry = MetricsRegistry()
    registry.counter("dispatch.batches", action="photo").inc(2)
    registry.gauge("queue.depth").set(3)
    registry.histogram("probe.rtt_seconds").observe(0.02)
    return registry


def traced_obs():
    env = Environment()
    obs = Observability(env, tracer=EngineTracer(), enabled=True)
    with obs.span("run"):
        with obs.span("batch", action="photo"):
            env.run(until=1.5)
        env.run(until=4.0)
    return obs


class TestMetricsExport:
    def test_json_is_stable_and_parseable(self):
        registry = small_registry()
        first = metrics_to_json(registry)
        assert first == metrics_to_json(registry)
        parsed = json.loads(first)
        assert parsed["counters"]["dispatch.batches{action=photo}"] == 2.0

    def test_json_accepts_snapshot_dict_too(self):
        registry = small_registry()
        assert metrics_to_json(registry.snapshot()) \
            == metrics_to_json(registry)

    def test_text_sections_and_values(self):
        text = metrics_to_text(small_registry())
        assert "counters:" in text
        assert "dispatch.batches{action=photo}" in text
        assert "queue.depth" in text
        assert "count=1" in text  # the histogram line

    def test_text_of_empty_registry_is_empty(self):
        assert metrics_to_text(MetricsRegistry()) == ""


class TestSpanExport:
    def test_span_records_fields(self):
        spans = span_records(traced_obs().tracer)
        by_name = {span["name"]: span for span in spans}
        batch = by_name["batch"]
        assert batch["parent"] == by_name["run"]["id"]
        assert batch["labels"] == {"action": "photo"}
        assert batch["start"] == 0.0
        assert batch["end"] == 1.5
        assert batch["duration"] == 1.5
        assert by_name["run"]["end"] == 4.0

    def test_tree_indents_children(self):
        tree = span_tree_text(traced_obs().tracer)
        lines = tree.splitlines()
        assert lines[0].lstrip().startswith("[") and "run" in lines[0]
        assert lines[1].startswith("  [") and "batch" in lines[1]
        assert "action=photo" in lines[1]

    def test_spans_json_round_trips(self):
        obs = traced_obs()
        parsed = json.loads(spans_to_json(obs.tracer))
        assert parsed == span_records(obs.tracer)

    def test_empty_tracer_exports_empty(self):
        tracer = EngineTracer()
        assert span_records(tracer) == []
        assert span_tree_text(tracer) == ""
