"""Observability-off invariance: the disabled path changes nothing.

``pre_instrumentation_ft.json`` was captured from the PR-2
fault-tolerance scenario *before* any instrumentation existed in the
source tree. Replaying the same scenario with the observability knob
absent or off through the instrumented code must reproduce that dump
byte for byte — proving the default-off path is inert.
"""

from repro import AortaEngine, EngineConfig, Environment
from tests.obs.golden import diff_dumps, dump_engine, load_golden, render_diff
from tests.obs.scenarios import ft_scenario, snapshot_scenario


def assert_matches_pre_instrumentation(engine):
    golden = load_golden("pre_instrumentation_ft")
    assert golden is not None, "pre-instrumentation golden missing"
    differences = diff_dumps(golden, dump_engine(engine))
    assert not differences, \
        render_diff("pre_instrumentation_ft", differences)


def test_observability_defaults_off():
    assert EngineConfig().observability is False
    assert AortaEngine(Environment()).obs.enabled is False


def test_knob_unset_matches_pre_instrumentation_capture():
    assert_matches_pre_instrumentation(ft_scenario(observability=None))


def test_knob_false_matches_pre_instrumentation_capture():
    assert_matches_pre_instrumentation(ft_scenario(observability=False))


def test_disabled_engine_emits_no_spans_or_metrics():
    engine = snapshot_scenario(observability=False)
    assert engine.tracer.of_kind("span") == []
    snapshot = engine.metrics()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}
    assert "metrics" not in dump_engine(engine)
