"""Unit tests of the metrics primitives (repro.obs.metrics)."""

import pytest

from repro.errors import AortaError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
    render_key,
)


class TestKeys:
    def test_labels_sort_into_one_canonical_key(self):
        assert metric_key("a.b", {"x": 1, "y": "z"}) \
            == metric_key("a.b", {"y": "z", "x": 1})

    def test_invalid_names_rejected(self):
        for bad in ("", "UPPER", "1leading", "spa ce", "dash-ed"):
            with pytest.raises(AortaError, match="invalid metric name"):
                metric_key(bad, {})

    def test_render_key(self):
        assert render_key(metric_key("a.b", {})) == "a.b"
        assert render_key(metric_key("a.b", {"y": 2, "x": 1})) \
            == "a.b{x=1,y=2}"


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(AortaError, match="only go up"):
            Counter().inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = Gauge()
        gauge.set(7.0)
        gauge.add(-2.0)
        assert gauge.value == 5.0


class TestHistogram:
    def test_observations_land_in_bucket_order(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # <=1, <=10, +inf
        assert hist.count == 3
        assert hist.total == 55.5
        assert (hist.min, hist.max) == (0.5, 50.0)

    def test_boundary_value_goes_to_lower_bucket(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_buckets_must_strictly_increase(self):
        for bad in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(AortaError, match="strictly"):
                Histogram(buckets=bad)

    def test_merge_requires_equal_buckets(self):
        with pytest.raises(AortaError, match="different buckets"):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))

    def test_default_buckets(self):
        assert Histogram().buckets == DEFAULT_BUCKETS


class TestRegistry:
    def test_same_key_same_series(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b", x=1) is registry.counter("a.b", x=1)
        assert registry.counter("a.b", x=1) is not registry.counter("a.b",
                                                                    x=2)

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(AortaError, match="Counter, not a Gauge"):
            registry.gauge("a.b")

    def test_name_label_does_not_collide_with_parameter(self):
        registry = MetricsRegistry()
        registry.counter("a.b", name="x").inc()
        assert registry.snapshot()["counters"] == {"a.b{name=x}": 1.0}

    def test_snapshot_sorted_and_sectioned(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc()
        registry.counter("a.count", dev="d2").inc(2)
        registry.counter("a.count", dev="d1").inc(3)
        registry.gauge("q.depth").set(4)
        registry.histogram("h.seconds").observe(0.25)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == [
            "a.count{dev=d1}", "a.count{dev=d2}", "z.count"]
        assert snap["gauges"] == {"q.depth": 4.0}
        assert snap["histograms"]["h.seconds"]["count"] == 1

    def test_merge_counters_add_gauges_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(5)
        b.gauge("g").set(4)
        b.histogram("h").observe(1.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5.0
        assert snap["gauges"]["g"] == 5.0
        assert snap["histograms"]["h"]["count"] == 1
