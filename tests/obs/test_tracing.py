"""Tracer satellites: deque eviction and TRACE_KINDS exhaustiveness."""

import pytest

from repro.errors import AortaError
from repro.core.tracing import TRACE_KINDS, EngineTracer
from tests.obs.scenarios import (
    continuous_outage_scenario,
    ft_scenario,
    overload_storm_scenario,
    snapshot_scenario,
)


class TestEviction:
    def test_bounded_at_max_records(self):
        tracer = EngineTracer(max_records=5)
        for i in range(20):
            tracer.record(float(i), "request_serviced", serial=i)
        assert len(tracer) == 5

    def test_keeps_newest_drops_oldest(self):
        tracer = EngineTracer(max_records=3)
        for i in range(10):
            tracer.record(float(i), "request_serviced", serial=i)
        assert [r.fields["serial"] for r in tracer] == [7, 8, 9]

    def test_records_property_and_tail_agree(self):
        tracer = EngineTracer(max_records=4)
        for i in range(6):
            tracer.record(float(i), "request_serviced", serial=i)
        assert tracer.records == list(tracer)
        assert tracer.tail(2) == "\n".join(
            str(r) for r in tracer.records[-2:])

    def test_filters_survive_eviction(self):
        tracer = EngineTracer(max_records=4)
        for i in range(8):
            kind = "request_serviced" if i % 2 else "request_failed"
            tracer.record(float(i), kind, serial=i)
        serviced = tracer.of_kind("request_serviced")
        assert [r.fields["serial"] for r in serviced] == [5, 7]

    def test_unbounded_when_max_records_none(self):
        tracer = EngineTracer(max_records=None)
        for i in range(20_000):
            tracer.record(float(i), "request_serviced")
        assert len(tracer) == 20_000


class TestStrictKinds:
    def test_strict_rejects_unknown_kind(self):
        tracer = EngineTracer(strict=True)
        with pytest.raises(AortaError, match="not declared in TRACE_KINDS"):
            tracer.record(0.0, "not_a_kind")

    def test_strict_accepts_every_declared_kind(self):
        tracer = EngineTracer(strict=True)
        for kind in TRACE_KINDS:
            tracer.record(0.0, kind)
        assert len(tracer) == len(TRACE_KINDS)

    def test_lenient_by_default(self):
        tracer = EngineTracer()
        tracer.record(0.0, "not_a_kind")
        assert tracer.records[-1].kind == "not_a_kind"


class TestExhaustiveness:
    def test_trace_kinds_has_no_duplicates(self):
        assert len(TRACE_KINDS) == len(set(TRACE_KINDS))

    def test_scenarios_exercise_every_trace_kind(self):
        """Set equality: the canonical scenarios emit every declared
        kind, and never an undeclared one — so TRACE_KINDS can neither
        rot (dead kinds) nor lag (unregistered kinds)."""
        observed = set()
        for engine in (snapshot_scenario(observability=True),
                       continuous_outage_scenario(observability=True),
                       ft_scenario(observability=True),
                       overload_storm_scenario(observability=True)):
            observed |= {record.kind for record in engine.tracer}

        # The two kinds the canonical runs cannot reach: dropping the
        # registered AQ, and a probe that finds its device gone.
        engine = snapshot_scenario(observability=True)
        engine.execute("DROP AQ snapshot")
        env = engine.env
        for device in list(engine.comm.registry.of_type("camera")):
            device.go_offline()
        engine.execute('''CREATE AQ snapshot2 AS
            SELECT photo(c.ip, s.loc, "photos/admin")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
        from repro import SensorStimulus
        mote = next(iter(engine.comm.registry.of_type("sensor")))
        mote.inject(SensorStimulus("accel_x", start=env.now + 1.0,
                                   duration=3.0, magnitude=850.0))
        engine.run(until=env.now + 20.0)
        observed |= {record.kind for record in engine.tracer}

        assert observed == set(TRACE_KINDS)
