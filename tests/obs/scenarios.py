"""Canonical deterministic scenarios for the golden-trace harness.

Every scenario builds a fresh engine on a fresh virtual clock with
explicit seeds, so two runs — in the same process or across machines —
produce the same trace records, the same statistics dict and (with
observability on) the same span tree and metric snapshot. The golden
harness (:mod:`tests.obs.golden`) diffs normalized dumps of these runs
against checked-in JSON.

``observability=None`` means "do not pass the knob at all": the config
is built exactly as pre-observability code built it, which is what the
pre-instrumentation golden capture used.
"""

from __future__ import annotations

import random
from typing import Optional

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    HealthPolicy,
    PanTiltZoomCamera,
    Point,
    RetryPolicy,
    SensorMote,
    SensorStimulus,
)
from repro.actions.request import ActionRequest
from repro.devices.failures import FailureInjector, OutageSpec
from repro.errors import AdmissionError
from repro.overload import OverloadPolicy, TierRate


def _config(observability: Optional[bool], **kwargs) -> EngineConfig:
    if observability is not None:
        kwargs["observability"] = observability
    return EngineConfig(**kwargs)


def snapshot_scenario(observability: Optional[bool] = None,
                      env=None, **config_kwargs) -> AortaEngine:
    """The paper's Figure 1 snapshot: one stimulus, one photo.

    Two ceiling cameras cover a sensor mote; an acceleration spike at
    t=2s triggers the registered AQ once, and the cost-optimal camera
    takes the photo. Runs 30 virtual seconds. Extra keyword arguments
    pass through to :class:`EngineConfig` (e.g. the comm fast-path
    knobs, for identity tests against the fastpath-off golden).
    """
    env = env if env is not None else Environment()
    engine = AortaEngine(env, config=_config(observability,
                                             **config_kwargs), seed=0)
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        ip_address="10.0.0.1"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(20, 0),
                                        facing=180.0,
                                        ip_address="10.0.0.2"))
    mote = SensorMote(env, "mote1", Point(5, 3), noise_amplitude=0.0)
    engine.add_device(mote)
    engine.execute('''CREATE AQ snapshot AS
        SELECT photo(c.ip, s.loc, "photos/admin")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=3.0,
                               magnitude=850.0))
    engine.start()
    engine.run(until=30.0)
    return engine


def continuous_outage_scenario(
    observability: Optional[bool] = None,
    env=None,
    **config_kwargs,
) -> AortaEngine:
    """A continuous photo workload through injected camera outages.

    Three cameras service a photo() request every 2 virtual seconds
    with probing off (the Section 4 ablation, so failures hit the
    execution path), retries, failover and a tight circuit breaker.
    cam1 goes offline 8s..24s (long enough to be quarantined and later
    readmitted on probation); cam2 crashes 14s..20s. Runs 70 virtual
    seconds; requests carry explicit ids r01.. so dumps are readable.
    """
    env = env if env is not None else Environment()
    config = _config(
        observability,
        probing=False,
        **config_kwargs,
        retry=RetryPolicy(max_attempts=2, backoff_base=0.5,
                          backoff_factor=2.0, backoff_max=4.0,
                          jitter=0.1, failover=True, max_dispatches=4),
        health=HealthPolicy(failure_threshold=2, quarantine_seconds=10.0,
                            backoff_factor=2.0, quarantine_max=40.0),
        lock_lease_seconds=30.0,
    )
    engine = AortaEngine(env, config=config, seed=0)
    cameras = []
    for index in range(3):
        camera = PanTiltZoomCamera(
            env, f"cam{index + 1}", Point(15.0 * index, 0.0),
            facing=0.0, view_half_angle=170.0, view_range=1000.0)
        engine.add_device(camera)
        cameras.append(camera)
    candidates = tuple(camera.device_id for camera in cameras)

    action = engine.actions.get("photo")
    operator = engine.dispatcher.operator_for(action)

    def workload(env):
        serial = 0
        for tick in range(1, 21):           # t = 2, 4, ..., 40
            submit_at = 2.0 * tick
            delay = submit_at - env.now
            if delay > 0:
                yield env.timeout(delay)
            serial += 1
            operator.submit(ActionRequest(
                action_name="photo",
                arguments={"target": Point(10.0 + tick, 5.0),
                           "directory": "photos"},
                created_at=env.now,
                candidates=candidates,
                request_id=f"r{serial:02d}",
            ))

    env.process(workload(env))
    engine.dispatcher.start()

    injector = FailureInjector(env)
    injector.schedule_outage(cameras[0], OutageSpec(
        device_id="cam1", start=8.0, duration=16.0, kind="offline"))
    injector.schedule_outage(cameras[1], OutageSpec(
        device_id="cam2", start=14.0, duration=6.0, kind="crash"))

    engine.run(until=70.0)
    return engine


# ----------------------------------------------------------------------
# The overload storm scenario (PR 7): a request flood against a small
# camera fleet under the overload-control plane, tuned so every
# overload trace kind fires deterministically.
# ----------------------------------------------------------------------
OVERLOAD_STORM_POLICY = OverloadPolicy(
    tier_rates={1: TierRate(rate=1.0, burst=2.0)},
    registration_rates={1: TierRate(rate=0.001, burst=1.0)},
    capacity_horizon=50.0,
    utilization_cap=1.0,
    queue_limit=16,
    shed_interval=0.5,
    shed_high_watermark=12,
    shed_low_watermark=4,
    shed_protect_tier=3,
)


def overload_storm_scenario(observability: Optional[bool] = None,
                            env=None, **config_kwargs) -> AortaEngine:
    """A 40-request storm against four cameras with overload control on.

    Tier-1 traffic trips the admission rate limit (request_rejected);
    the bounded photo queue (limit 16) evicts and backpressures under
    the flood (request_shed / request_rejected); the backlog crosses
    the 12-request high watermark so pressure shedding starts and,
    once drained to 4, stops (shedding_started / shedding_stopped);
    tier-2 deadlines expire in queue (request_shed); and a second
    tier-1 AQ registration trips the registration rate limit
    (query_rejected). Fully deterministic; runs 40 virtual seconds.
    """
    env = env if env is not None else Environment()
    engine = AortaEngine(
        env,
        config=_config(observability, overload=True,
                       overload_policy=OVERLOAD_STORM_POLICY,
                       **config_kwargs),
        seed=0)
    cameras = []
    for index in range(4):
        camera = PanTiltZoomCamera(
            env, f"cam{index + 1}", Point(20.0 * index, 0.0),
            facing=0.0, view_half_angle=170.0, view_range=1000.0)
        engine.add_device(camera)
        cameras.append(camera)
    mote = SensorMote(env, "mote1", Point(5, 3), noise_amplitude=0.0)
    engine.add_device(mote)
    candidates = tuple(camera.device_id for camera in cameras)

    engine.create_aq('''CREATE AQ storm_watch AS
        SELECT photo(c.ip, s.loc, "photos/storm")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''',
                     priority=1, deadline_seconds=20.0)
    try:
        engine.create_aq('''CREATE AQ storm_watch_b AS
            SELECT photo(c.ip, s.loc, "photos/storm")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''',
                         priority=1)
        raise AssertionError("second tier-1 registration must be refused")
    except AdmissionError:
        pass
    mote.inject(SensorStimulus("accel_x", start=2.0, duration=3.0,
                               magnitude=850.0))

    action = engine.actions.get("photo")
    operator = engine.dispatcher.operator_for(action)

    def make_request(index: int, now: float) -> ActionRequest:
        # Tier mix: 25% tier 3 (protected), 25% tier 2 (deadlined),
        # 50% tier 1 (rate limited).
        if index % 4 == 0:
            tier, deadline = 3, None
        elif index % 4 == 1:
            tier, deadline = 2, now + 3.0
        else:
            tier, deadline = 1, now + 10.0
        return ActionRequest(
            action_name="photo",
            arguments={"target": Point(10.0 + index, 5.0),
                       "directory": "photos/storm"},
            created_at=now,
            candidates=candidates,
            request_id=f"storm{index:02d}",
            priority=tier,
            deadline=deadline,
        )

    injector = FailureInjector(env)
    injector.schedule_request_storm(
        lambda request: engine.dispatcher.submit(operator, request),
        make_request, start=1.0, duration=2.0, rate=20.0)

    engine.start()
    engine.run(until=40.0)
    return engine


# ----------------------------------------------------------------------
# The PR-2 fault-tolerance scenario (bench_fault_tolerance --smoke),
# reproduced here so the observability-off invariance test can replay it
# without importing from benchmarks/.
# ----------------------------------------------------------------------
FT_N_CAMERAS = 8
FT_OUTAGE_RATE = 0.03
FT_MEAN_DURATION = 12.0
FT_FAILURE_SEED = 11
FT_WORKLOAD_SEED = 5
FT_REQUEST_PERIOD = 2.0
FT_HORIZON = 100.0
FT_DRAIN = 60.0

FT_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.5,
                       backoff_factor=2.0, backoff_max=10.0,
                       jitter=0.1, failover=True, max_dispatches=4)
FT_HEALTH = HealthPolicy(failure_threshold=3, quarantine_seconds=15.0,
                         backoff_factor=2.0, quarantine_max=120.0)


def ft_scenario(observability: Optional[bool] = None,
                env=None) -> AortaEngine:
    """The PR-2 fault-tolerance smoke scenario, exactly as benched.

    Eight cameras under Poisson-like random outages (seed 11) service a
    photo() every 2s for 100 virtual seconds plus a 60s drain, with
    probing off, retries, failover, quarantine and lock leases — the
    configuration of ``benchmarks/bench_fault_tolerance.py --smoke``.
    """
    env = env if env is not None else Environment()
    config = _config(observability, probing=False, retry=FT_RETRY,
                     health=FT_HEALTH, lock_lease_seconds=60.0)
    engine = AortaEngine(env, config=config, seed=0)
    cam_rng = random.Random(1)
    cameras = []
    for index in range(FT_N_CAMERAS):
        camera = PanTiltZoomCamera(
            env, f"cam{index + 1}",
            Point(cam_rng.uniform(0.0, 100.0), cam_rng.uniform(0.0, 100.0)),
            facing=cam_rng.uniform(-180.0, 180.0),
            view_half_angle=170.0, view_range=1000.0)
        engine.add_device(camera)
        cameras.append(camera)
    candidates = tuple(camera.device_id for camera in cameras)

    action = engine.actions.get("photo")
    operator = engine.dispatcher.operator_for(action)

    workload_rng = random.Random(FT_WORKLOAD_SEED)
    schedule = []
    t = FT_REQUEST_PERIOD
    while t < FT_HORIZON:
        schedule.append((t, Point(workload_rng.uniform(0.0, 100.0),
                                  workload_rng.uniform(0.0, 100.0))))
        t += FT_REQUEST_PERIOD

    def workload(env):
        for submit_at, target in schedule:
            delay = submit_at - env.now
            if delay > 0:
                yield env.timeout(delay)
            operator.submit(ActionRequest(
                action_name="photo",
                arguments={"target": target, "directory": "photos"},
                created_at=env.now,
                candidates=candidates,
            ))

    env.process(workload(env))
    engine.dispatcher.start()

    injector = FailureInjector(env)
    injector.random_outages(
        cameras, horizon=FT_HORIZON,
        outage_rate_per_device=FT_OUTAGE_RATE,
        mean_duration=FT_MEAN_DURATION,
        rng=random.Random(FT_FAILURE_SEED))

    engine.run(until=FT_HORIZON + FT_DRAIN)
    return engine
