"""Unit tests of the span layer (repro.obs.spans)."""

import pytest

from repro.errors import AortaError
from repro.core.tracing import EngineTracer
from repro.obs import NULL_OBS, Observability
from repro.sim import Environment


def make_obs():
    env = Environment()
    return Observability(env, tracer=EngineTracer(), enabled=True), env


def span_record(obs, name):
    for record in obs.tracer.of_kind("span"):
        if record.fields["name"] == name:
            return record
    raise AssertionError(f"no span record named {name!r}")


class TestLifecycle:
    def test_closing_emits_one_trace_record(self):
        obs, env = make_obs()
        with obs.span("work", device="cam1"):
            env.run(until=2.5)
        record = span_record(obs, "work")
        assert record.at == 2.5
        assert record.fields["start"] == 0.0
        assert record.fields["parent"] == 0
        assert record.fields["device"] == "cam1"

    def test_duration_lands_in_span_seconds_histogram(self):
        obs, env = make_obs()
        with obs.span("work"):
            env.run(until=3.0)
        snap = obs.registry.snapshot()
        assert snap["histograms"]["span.seconds{name=work}"]["sum"] == 3.0

    def test_span_ids_are_sequential(self):
        obs, _ = make_obs()
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        assert [r.fields["span"] for r in obs.tracer.of_kind("span")] \
            == [1, 2]


class TestParenting:
    def test_plain_spans_nest_dynamically(self):
        obs, _ = make_obs()
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        assert span_record(obs, "inner").fields["parent"] == outer.span_id

    def test_detached_takes_stack_parent_but_stays_off_stack(self):
        obs, _ = make_obs()
        with obs.span("outer") as outer:
            with obs.span("poll", detached=True) as poll:
                # A sibling opened while the detached span is live must
                # parent to the *stack* (outer), not to the poll.
                with obs.span("sibling"):
                    pass
        assert span_record(obs, "poll").fields["parent"] == outer.span_id
        assert span_record(obs, "sibling").fields["parent"] \
            == outer.span_id
        assert poll.span_id != outer.span_id

    def test_explicit_parent_pins_off_stack(self):
        obs, _ = make_obs()
        with obs.span("batch") as batch:
            pass
        with obs.span("other"):
            with obs.span("execute", parent=batch):
                pass
        assert span_record(obs, "execute").fields["parent"] \
            == batch.span_id

    def test_out_of_order_close_between_processes(self):
        # Two interleaved sim processes close in non-stack order; each
        # record still carries the parent captured at open time.
        obs, _ = make_obs()
        a = obs.span("a")
        b = obs.span("b")
        a.__exit__(None, None, None)
        b.__exit__(None, None, None)
        assert span_record(obs, "b").fields["parent"] == a.span_id


class TestGuards:
    def test_reserved_label_rejected(self):
        obs, _ = make_obs()
        with pytest.raises(AortaError, match="reserved span fields"):
            obs.span("work", start=1.0)

    def test_enabled_needs_env_and_tracer(self):
        with pytest.raises(AortaError, match="needs an environment"):
            Observability(enabled=True)

    def test_disabled_span_is_shared_noop(self):
        assert NULL_OBS.span("work", x=1) is NULL_OBS.span("other")
        with NULL_OBS.span("work"):
            pass
        assert len(NULL_OBS.registry) == 0

    def test_disabled_metrics_are_noops(self):
        NULL_OBS.inc("c")
        NULL_OBS.observe("h", 1.0)
        NULL_OBS.set_gauge("g", 1.0)
        assert len(NULL_OBS.registry) == 0
