"""Golden-trace conformance tests.

Each canonical scenario is run live and diffed against its checked-in
golden dump. Because the clock is virtual and every RNG is seeded, any
difference is a behaviour change — intentional ones are recorded with
``UPDATE_GOLDENS=1`` (see tests/obs/golden.py).
"""

import json

import pytest

from repro.actions.request import ActionRequest
from tests.obs.golden import (
    assert_golden,
    diff_dumps,
    dump_engine,
    load_golden,
    render_diff,
)
from tests.obs.scenarios import (
    continuous_outage_scenario,
    snapshot_scenario,
)


class TestConformance:
    def test_snapshot_scenario_matches_golden(self):
        engine = snapshot_scenario(observability=True)
        assert_golden("snapshot_obs", dump_engine(engine))

    def test_continuous_outage_scenario_matches_golden(self):
        engine = continuous_outage_scenario(observability=True)
        assert_golden("continuous_outage_obs", dump_engine(engine))

    def test_dump_is_independent_of_global_request_counter(self):
        """Auto request ids come from a process-global counter; the
        dump renumbers them, so history before the run is invisible."""
        for _ in range(13):  # burn ids: req<N> offset shifts by 13
            ActionRequest(action_name="photo", arguments={},
                          created_at=0.0, candidates=("cam1",))
        engine = snapshot_scenario(observability=True)
        assert_golden("snapshot_obs", dump_engine(engine))

    def test_dump_excludes_wallclock_metrics(self):
        engine = snapshot_scenario(observability=True)
        raw = engine.metrics()
        assert any("wallclock" in key
                   for key in raw["histograms"]), \
            "scenario no longer emits a wallclock metric; update test"
        dump = dump_engine(engine)
        for section in dump["metrics"].values():
            assert not any("wallclock" in key for key in section)

    def test_dump_round_trips_through_json(self):
        dump = dump_engine(snapshot_scenario(observability=True))
        assert json.loads(json.dumps(dump, sort_keys=True)) \
            == json.loads(json.dumps(dump, sort_keys=True))


class TestDiffing:
    def test_identical_dumps_diff_empty(self):
        golden = load_golden("snapshot_obs")
        assert golden is not None
        assert diff_dumps(golden, golden) == []

    def test_perturbation_produces_readable_delta(self):
        """A single corrupted field yields a precise, human-readable
        diff naming the path and both values."""
        golden = load_golden("snapshot_obs")
        assert golden is not None
        perturbed = json.loads(json.dumps(golden))
        perturbed["statistics"]["requests_serviced"] = 999
        del perturbed["trace"][0]
        perturbed["metrics"]["counters"]["obs.bogus"] = 1.0

        differences = diff_dumps(golden, perturbed)
        assert differences
        rendered = render_diff("snapshot_obs", differences)
        assert "statistics.requests_serviced" in rendered
        assert "999" in rendered
        assert "entries" in rendered          # the trace length line
        assert "obs.bogus" in rendered
        assert "only in actual" in rendered

        with pytest.raises(AssertionError, match="snapshot_obs"):
            assert_golden("snapshot_obs", perturbed)

    def test_diff_respects_limit(self):
        left = {"k": list(range(100))}
        right = {"k": [x + 1 for x in range(100)]}
        differences = diff_dumps(left, right, limit=10)
        assert len(differences) == 11
        assert differences[-1].startswith("... and ")

    def test_type_change_is_a_difference(self):
        assert diff_dumps({"a": 1}, {"a": 1.0}) \
            == ["a: golden 1 != actual 1.0"]
