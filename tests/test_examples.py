"""Smoke tests: every example script runs to completion.

Examples are part of the public API surface; they must keep working.
"""

import sys

import pytest

sys.path.insert(0, "examples")


def test_quickstart(capsys):
    import quickstart
    quickstart.main()
    out = capsys.readouterr().out
    assert "Registered continuous query" in out
    assert "sharp       True" in out


def test_snapshot_queries(capsys):
    import snapshot_queries
    snapshot_queries.main()
    out = capsys.readouterr().out
    assert "Scan(camera AS c)" in out
    assert "row(s)" in out


def test_custom_device(capsys):
    import custom_device
    custom_device.main()
    out = capsys.readouterr().out
    assert "ENGAGED" in out
    assert "lockdown action(s) serviced" in out


def test_sensor_field(capsys):
    import sensor_field
    sensor_field.main()
    out = capsys.readouterr().out
    assert "Hop depths" in out
    assert "blinked" in out


@pytest.mark.slow
def test_surveillance_lab(capsys):
    import surveillance_lab
    surveillance_lab.main()
    out = capsys.readouterr().out
    assert "requests completed" in out
    assert "MMS in manager inbox" in out


def test_scheduling_study_core(capsys):
    """Drive the study's internals with a tiny configuration."""
    import scheduling_study
    from repro.scheduling import uniform_camera_workload
    problems = [uniform_camera_workload(6, 3, seed=s) for s in range(2)]
    rows = scheduling_study.run_workloads(
        problems, scheduling_study.algorithm_factories(fast=True))
    assert [name for name, *_ in rows] == [
        "LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM"]
    scheduling_study.print_table("smoke", rows)
    assert "smoke" in capsys.readouterr().out
