"""Edge cases of the relational plan operators."""

import pytest

from repro.errors import PlanError, ProfileError, QueryError
from repro.comm.layer import DeviceTypeRegistration
from repro.plan.operators import JoinOp, ProjectOp, TableScanOp
from repro.profiles.defaults import (
    camera_catalog,
    camera_cost_table,
    sensor_cost_table,
)
from repro.query.ast import Star
from repro.query.parser import parse_expression
from tests.core.conftest import build_lab


def run(engine, generator):
    box = []

    def proc(env):
        box.append((yield from generator))

    engine.env.process(proc(engine.env))
    engine.env.run()
    return box[0]


def test_join_rejects_shared_alias():
    engine = build_lab()
    scan_a = TableScanOp("s", engine.comm.scan_operator("sensor"))
    scan_b = TableScanOp("s", engine.comm.scan_operator("sensor"))
    join = JoinOp(scan_a, scan_b)
    with pytest.raises(PlanError, match="share aliases"):
        run(engine, join.rows())


def test_join_cardinality_is_product():
    engine = build_lab()  # 2 cameras x 3 motes
    join = JoinOp(TableScanOp("s", engine.comm.scan_operator("sensor")),
                  TableScanOp("c", engine.comm.scan_operator("camera")))
    rows = run(engine, join.rows())
    assert len(rows) == 6
    assert all(set(bindings) == {"s", "c"} for bindings in rows)


def test_project_star_labels_with_sample():
    engine = build_lab()
    scan = TableScanOp("c", engine.comm.scan_operator("camera"))
    project = ProjectOp(scan, (Star(),), engine.functions)
    bindings = run(engine, scan.rows())
    labels = project.column_labels(sample=bindings[0])
    assert "c.id" in labels and "c.pan" in labels


def test_project_star_labels_without_sample():
    engine = build_lab()
    scan = TableScanOp("c", engine.comm.scan_operator("camera"))
    project = ProjectOp(scan, (Star(),), engine.functions)
    assert project.column_labels() == ["*"]


def test_project_expression_labels():
    engine = build_lab()
    scan = TableScanOp("c", engine.comm.scan_operator("camera"))
    items = (parse_expression("c.id"), parse_expression("c.pan * 2"))
    project = ProjectOp(scan, items, engine.functions)
    assert project.column_labels() == ["c.id", "(c.pan * 2)"]


def test_filter_non_boolean_predicate_rejected():
    engine = build_lab()
    from repro.plan.operators import FilterOp
    scan = TableScanOp("c", engine.comm.scan_operator("camera"))
    bad = FilterOp(scan, parse_expression("c.pan + 1"), engine.functions)
    with pytest.raises(QueryError, match="expected bool"):
        run(engine, bad.rows())


def test_device_type_registration_validation():
    with pytest.raises(ProfileError, match="cost\\s+table is for"):
        DeviceTypeRegistration(
            catalog=camera_catalog(),
            cost_table=sensor_cost_table(),
            probe_timeout=1.0,
        )
    with pytest.raises(ProfileError, match="probe timeout"):
        DeviceTypeRegistration(
            catalog=camera_catalog(),
            cost_table=camera_cost_table(),
            probe_timeout=0.0,
        )
