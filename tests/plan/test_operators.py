"""Tests for relational plan operators over live virtual tables."""

import pytest

from repro import AortaEngine, Environment, Point, PanTiltZoomCamera, SensorMote
from repro.devices import SensorStimulus
from tests.core.conftest import LOSSLESS


@pytest.fixture
def engine():
    env = Environment()
    engine = AortaEngine(env, links=dict(LOSSLESS))
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        ip_address="10.0.0.1"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(30, 0),
                                        ip_address="10.0.0.2",
                                        view_range=10.0))
    for i, x in enumerate((2.0, 8.0, 40.0)):
        engine.add_device(SensorMote(env, f"mote{i + 1}", Point(x, 0),
                                     noise_amplitude=0.0))
    return engine


def test_select_star_single_table(engine):
    rows = engine.run_select("SELECT * FROM camera c")
    assert len(rows) == 2


def test_select_columns(engine):
    rows = engine.run_select("SELECT c.id, c.ip FROM camera c")
    assert sorted(rows) == [("cam1", "10.0.0.1"), ("cam2", "10.0.0.2")]


def test_select_with_filter(engine):
    rows = engine.run_select(
        "SELECT s.id FROM sensor s WHERE s.loc_x < 10")
    assert sorted(rows) == [("mote1",), ("mote2",)]


def test_select_sensory_attribute_live(engine):
    mote = engine.comm.registry.get("mote1")
    mote.inject(SensorStimulus("accel_x", start=0.0, duration=1e6,
                               magnitude=900.0))
    rows = engine.run_select(
        "SELECT s.id FROM sensor s WHERE s.accel_x > 500")
    assert rows == [("mote1",)]


def test_join_with_function_predicate(engine):
    """Which (sensor, camera) pairs are in coverage?"""
    rows = engine.run_select(
        "SELECT s.id, c.id FROM sensor s, camera c "
        "WHERE coverage(c.id, s.loc)")
    pairs = set(rows)
    # cam1 (range 50) covers motes at x=2, 8, 40; cam2 (range 10,
    # at x=30) covers the mote at x=40 (distance 10) and none closer.
    assert ("mote1", "cam1") in pairs
    assert ("mote2", "cam1") in pairs
    assert ("mote3", "cam1") in pairs
    assert ("mote1", "cam2") not in pairs


def test_join_offline_device_excluded(engine):
    engine.comm.registry.get("cam2").go_offline()
    rows = engine.run_select("SELECT c.id FROM camera c")
    assert rows == [("cam1",)]


def test_scalar_function_in_projection(engine):
    rows = engine.run_select(
        "SELECT s.id, distance(s.loc, c.loc) FROM sensor s, camera c "
        "WHERE c.id = \"cam1\"")
    by_id = dict(rows)
    assert by_id["mote1"] == pytest.approx(2.0)
    assert by_id["mote3"] == pytest.approx(40.0)
