"""Unit tests for the planner: continuous and snapshot plans."""

import pytest

from repro.errors import PlanError
from repro import AortaEngine, Environment
from repro.query.ast import ColumnRef, Literal
from repro.query.parser import parse

FIGURE_1_SELECT = '''SELECT photo(c.ip, s.loc, "photos/admin")
FROM sensor s, camera c
WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''


@pytest.fixture
def engine():
    return AortaEngine(Environment())


def plan_aq(engine, sql, name="q"):
    return engine.planner.plan_continuous(name, parse(sql))


def test_figure_1_plan_structure(engine):
    plan = plan_aq(engine, FIGURE_1_SELECT, name="snapshot")
    assert plan.action.name == "photo"
    assert plan.event_alias == "s" and plan.event_table == "sensor"
    assert plan.device_alias == "c" and plan.device_table == "camera"
    assert str(plan.event_predicate) == "(s.accel_x > 500)"
    assert str(plan.candidate_predicate) == "coverage(c.id, s.loc)"
    assert plan.argument_expressions == {
        "target": ColumnRef("s", "loc"),
        "directory": Literal("photos/admin"),
    }


def test_plan_describe_mentions_all_stages(engine):
    text = plan_aq(engine, FIGURE_1_SELECT).describe()
    for fragment in ("EventScan", "EventFilter", "CandidateScan",
                     "CandidateFilter", "SharedAction(photo)"):
        assert fragment in text


def test_predicate_partitioning_multi_conjunct(engine):
    plan = plan_aq(engine, '''SELECT photo(c.ip, s.loc, "p")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND s.battery > 2.5
          AND coverage(c.id, s.loc) AND c.ip <> "10.0.0.9"''')
    assert "battery" in str(plan.event_predicate)
    assert "accel_x" in str(plan.event_predicate)
    assert "coverage" in str(plan.candidate_predicate)
    assert "ip" in str(plan.candidate_predicate)


def test_aq_without_where(engine):
    plan = plan_aq(engine, 'SELECT photo(c.ip, s.loc, "p") '
                           'FROM sensor s, camera c')
    assert plan.event_predicate is None
    assert plan.candidate_predicate is None


def test_wrong_arity_rejected(engine):
    with pytest.raises(PlanError, match="takes 3"):
        plan_aq(engine, 'SELECT photo(c.ip, s.loc) FROM sensor s, camera c')


def test_unqualified_device_argument_rejected(engine):
    with pytest.raises(PlanError, match="qualified column"):
        plan_aq(engine, 'SELECT photo("10.0.0.1", s.loc, "p") '
                        'FROM sensor s, camera c')


def test_device_argument_of_wrong_type_rejected(engine):
    with pytest.raises(PlanError, match="operates 'camera'"):
        plan_aq(engine, 'SELECT photo(s.id, s.loc, "p") '
                        'FROM sensor s, camera c')


def test_two_event_tables_rejected(engine):
    with pytest.raises(PlanError, match="exactly one event table"):
        plan_aq(engine, 'SELECT photo(c.ip, s.loc, "p") '
                        'FROM sensor s, sensor s2, camera c')


def test_action_argument_referencing_device_table_rejected(engine):
    with pytest.raises(PlanError, match="non-event aliases"):
        plan_aq(engine, 'SELECT photo(c.ip, c.loc, "p") '
                        'FROM sensor s, camera c')


def test_no_action_in_select_rejected(engine):
    with pytest.raises(PlanError, match="exactly one embedded action"):
        plan_aq(engine, 'SELECT s.accel_x FROM sensor s, camera c')


def test_extra_select_items_rejected(engine):
    with pytest.raises(PlanError, match="only the embedded action"):
        plan_aq(engine, 'SELECT photo(c.ip, s.loc, "p"), s.accel_x '
                        'FROM sensor s, camera c')


def test_snapshot_plan_rejects_embedded_action(engine):
    with pytest.raises(PlanError, match="CREATE AQ"):
        engine.planner.plan_snapshot(parse(
            'SELECT photo(c.ip, s.loc, "p") FROM sensor s, camera c'))


def test_snapshot_plan_explain(engine):
    plan = engine.planner.plan_snapshot(parse(
        "SELECT s.id, s.accel_x FROM sensor s WHERE s.accel_x > 100"))
    text = plan.describe()
    assert "Project" in text and "Filter" in text and "Scan" in text
