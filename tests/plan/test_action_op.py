"""Unit tests for the shared action operator."""

import pytest

from repro.errors import RegistrationError, SchedulingError
from repro.actions.builtins import builtin_definitions
from repro.actions.request import ActionRequest
from repro.plan import SharedActionOperator


@pytest.fixture
def operator():
    photo = next(d for d in builtin_definitions() if d.name == "photo")
    return SharedActionOperator(photo)


def make_request(query_id=""):
    return ActionRequest(action_name="photo", arguments={},
                         query_id=query_id, candidates=("cam1",))


def test_attach_detach(operator):
    operator.attach("q1")
    operator.attach("q2")
    assert operator.shared
    assert operator.attached_queries == {"q1", "q2"}
    operator.detach("q1")
    assert not operator.shared


def test_double_attach_rejected(operator):
    operator.attach("q1")
    with pytest.raises(RegistrationError, match="already attached"):
        operator.attach("q1")


def test_submit_and_drain_preserve_order(operator):
    operator.attach("q1")
    first, second = make_request("q1"), make_request("q1")
    operator.submit(first)
    operator.submit(second)
    assert operator.pending_count == 2
    assert operator.drain() == [first, second]
    assert operator.pending_count == 0
    assert operator.total_submitted == 2
    assert operator.total_drained == 2


def test_requests_tagged_by_query_share_one_operator(operator):
    """Section 2.3: tuples carry query IDs through the shared operator."""
    operator.attach("q1")
    operator.attach("q2")
    operator.submit(make_request("q1"))
    operator.submit(make_request("q2"))
    batch = operator.drain()
    assert [r.query_id for r in batch] == ["q1", "q2"]


def test_submit_wrong_action_rejected(operator):
    request = ActionRequest(action_name="beep", arguments={},
                            candidates=("m1",))
    with pytest.raises(SchedulingError, match="submitted to the"):
        operator.submit(request)


def test_submit_from_unattached_query_rejected(operator):
    with pytest.raises(SchedulingError, match="not attached"):
        operator.submit(make_request("ghost"))


def test_detach_discards_pending_of_that_query(operator):
    operator.attach("q1")
    operator.attach("q2")
    operator.submit(make_request("q1"))
    operator.submit(make_request("q2"))
    operator.detach("q1")
    assert [r.query_id for r in operator.drain()] == ["q2"]


def test_on_submit_callback_fires(operator):
    operator.attach("q1")
    seen = []
    operator.on_submit = seen.append
    request = make_request("q1")
    operator.submit(request)
    assert seen == [request]
