"""Coordinator behaviour: routing, lifecycle, errors, fleet capacity."""

from __future__ import annotations

import pytest

from repro import (
    AortaEngine,
    EngineConfig,
    HashPlacement,
    PanTiltZoomCamera,
    Point,
    RegionPlacement,
    SensorMote,
    ShardedEngine,
)
from repro.actions.request import ActionRequest
from repro.errors import (
    AdmissionError,
    AortaError,
    ShardingError,
    SimulationError,
)
from repro.overload import OverloadPolicy
from repro.runtime import VirtualRuntime, run_lockstep
from tests.shard.scenarios import FIGURE_1_AQ, region_layout

TWO_REGIONS = RegionPlacement.from_regions(region_layout(2))


def two_shard_fleet(**config_kwargs) -> ShardedEngine:
    config = EngineConfig(shards=2, **config_kwargs)
    fleet = ShardedEngine(config=config, placement=TWO_REGIONS, seed=0)
    for index in range(2):
        tag = f"{index:02d}"
        offset = 1000.0 * index
        fleet.add_device(f"cam{tag}a", lambda env, tag=tag, offset=offset:
                         PanTiltZoomCamera(env, f"cam{tag}a",
                                           Point(offset, 0)))
        fleet.add_device(f"cam{tag}b", lambda env, tag=tag, offset=offset:
                         PanTiltZoomCamera(env, f"cam{tag}b",
                                           Point(offset + 20, 0),
                                           facing=180.0))
        fleet.add_device(f"mote{tag}", lambda env, tag=tag, offset=offset:
                         SensorMote(env, f"mote{tag}",
                                    Point(offset + 5, 3),
                                    noise_amplitude=0.0))
    return fleet


# ----------------------------------------------------------------------
# Construction and placement wiring
# ----------------------------------------------------------------------
def test_plain_engine_refuses_multi_shard_config():
    with pytest.raises(AortaError, match="ShardedEngine"):
        AortaEngine(config=EngineConfig(shards=2))


def test_config_validates_shard_knobs():
    with pytest.raises(AortaError):
        EngineConfig(shards=0)
    with pytest.raises(AortaError):
        EngineConfig(shard_quantum=0.0)


def test_placement_width_must_match_config():
    with pytest.raises(ShardingError, match="config.shards"):
        ShardedEngine(config=EngineConfig(shards=4),
                      placement=HashPlacement(2))


def test_each_shard_gets_its_own_runtime_and_seed():
    fleet = two_shard_fleet()
    assert fleet.shard(0).env is not fleet.shard(1).env
    assert fleet.shard(0).seed != fleet.shard(1).seed
    with pytest.raises(ShardingError):
        fleet.shard(2)
    with pytest.raises(ShardingError):
        fleet.shard(-1)


def test_devices_land_on_their_placed_shard():
    fleet = two_shard_fleet()
    assert len(fleet.shard(0).comm.registry) == 3
    assert len(fleet.shard(1).comm.registry) == 3
    assert fleet.shard_of("cam00a") == 0
    assert fleet.shard_of("cam01b") == 1
    assert fleet.device("mote01").device_id == "mote01"


def test_factory_id_mismatch_is_refused():
    fleet = ShardedEngine(config=EngineConfig(shards=2),
                          placement=TWO_REGIONS, seed=0)
    with pytest.raises(ShardingError, match="declared id"):
        fleet.add_device("cam00a", lambda env: PanTiltZoomCamera(
            env, "other", Point(0, 0)))


def test_unplaced_device_is_refused_loudly():
    fleet = two_shard_fleet()
    with pytest.raises(ShardingError, match="ghost"):
        fleet.add_device("ghost", lambda env: SensorMote(
            env, "ghost", Point(0, 0)))
    with pytest.raises(ShardingError, match="ghost"):
        fleet.inject("ghost", None)


def test_inject_refuses_devices_without_stimulus_support():
    fleet = two_shard_fleet()
    with pytest.raises(ShardingError, match="stimuli"):
        fleet.inject("cam00a", None)


# ----------------------------------------------------------------------
# The declarative surface on a multi-shard fleet
# ----------------------------------------------------------------------
def test_create_aq_registers_on_every_shard():
    fleet = two_shard_fleet()
    result = fleet.execute(FIGURE_1_AQ)
    assert len(result) == 2
    for shard in fleet.shards:
        assert "snapshot" in shard.continuous.queries


def test_drop_aq_fans_out_and_returns_none():
    fleet = two_shard_fleet()
    fleet.execute(FIGURE_1_AQ)
    assert fleet.execute("DROP AQ snapshot") is None
    for shard in fleet.shards:
        assert "snapshot" not in shard.continuous.queries


def test_snapshot_select_needs_a_single_shard():
    fleet = two_shard_fleet()
    with pytest.raises(ShardingError, match="single shard"):
        fleet.execute("SELECT s.accel_x FROM sensor s")


def test_explain_describes_the_plan_without_registering():
    fleet = two_shard_fleet()
    description = fleet.execute(f"EXPLAIN {FIGURE_1_AQ}")
    assert "photo" in description
    for shard in fleet.shards:
        assert not shard.continuous.queries


def test_create_aq_admission_failure_rolls_back_earlier_shards(
        monkeypatch):
    fleet = two_shard_fleet()

    def refuse(sql, **kwargs):
        raise AdmissionError("tier rate exhausted")

    monkeypatch.setattr(fleet.shards[1], "create_aq", refuse)
    with pytest.raises(AdmissionError):
        fleet.create_aq(FIGURE_1_AQ, priority=1)
    # The shard that had already accepted must not keep a half-fleet
    # registration.
    assert "snapshot" not in fleet.shards[0].continuous.queries


# ----------------------------------------------------------------------
# Request routing
# ----------------------------------------------------------------------
def _request(candidates, request_id="x1"):
    return ActionRequest(action_name="photo",
                         arguments={"target": Point(5.0, 3.0),
                                    "directory": "photos"},
                         candidates=tuple(candidates),
                         request_id=request_id)


def test_route_picks_the_plurality_owner_and_restricts_candidates():
    fleet = two_shard_fleet()
    index, owned = fleet.route(
        _request(["cam00a", "cam00b", "cam01a"]))
    assert index == 0
    assert owned == ("cam00a", "cam00b")


def test_route_breaks_ownership_ties_to_the_lowest_shard():
    fleet = two_shard_fleet()
    index, owned = fleet.route(_request(["cam01a", "cam00a"]))
    assert index == 0
    assert owned == ("cam00a",)


def test_route_refuses_requests_without_candidates():
    fleet = two_shard_fleet()
    with pytest.raises(ShardingError, match="no candidate"):
        fleet.route(_request([]))


def test_submit_batch_splits_across_shards_and_merges_completions():
    fleet = two_shard_fleet()
    fleet.start()
    routed = fleet.submit_batch([
        _request(["cam00a", "cam00b"], "b1"),
        _request(["cam01a", "cam01b"], "b2"),
        _request(["cam00a", "cam01a", "cam01b"], "b3"),
    ])
    assert routed == {0: 1, 1: 2}
    fleet.run(until=30.0)
    completed = {request.request_id: request
                 for request in fleet.completed_requests}
    assert set(completed) == {"b1", "b2", "b3"}
    assert completed["b1"].state.value == "serviced"
    assert completed["b3"].assigned_device in ("cam01a", "cam01b")
    # The fleet-wide completion merge is ordered by completion time.
    times = [request.completed_at
             for request in fleet.completed_requests]
    assert times == sorted(times)


# ----------------------------------------------------------------------
# Lifecycle and the lockstep run loop
# ----------------------------------------------------------------------
def test_start_is_once_and_run_advances_every_shard_clock():
    fleet = two_shard_fleet()
    fleet.start()
    with pytest.raises(ShardingError, match="already started"):
        fleet.start()
    fleet.run(until=12.5)
    for shard in fleet.shards:
        assert shard.env.now == 12.5
    # A second run with a later deadline continues from where the
    # lockstep left off.
    fleet.run(until=20.0)
    for shard in fleet.shards:
        assert shard.env.now == 20.0


def test_per_shard_state_is_refused_on_multi_shard_fleets():
    fleet = two_shard_fleet()
    for attribute in ("env", "tracer", "obs"):
        with pytest.raises(ShardingError, match="per-shard"):
            getattr(fleet, attribute)


def test_run_lockstep_validates_its_inputs():
    with pytest.raises(SimulationError, match="quantum"):
        run_lockstep([VirtualRuntime()], 10.0, quantum=0.0)
    with pytest.raises(SimulationError, match="at least one"):
        run_lockstep([], 10.0)
    runtime = VirtualRuntime()
    runtime.run(until=5.0)
    with pytest.raises(SimulationError, match="already at"):
        run_lockstep([runtime], 1.0)


def test_run_lockstep_tolerates_runtimes_ahead_of_the_floor():
    ahead, behind = VirtualRuntime(), VirtualRuntime()
    ahead.run(until=7.0)
    assert run_lockstep([ahead, behind], 10.0, quantum=2.0) == 10.0
    assert ahead.now == 10.0
    assert behind.now == 10.0


# ----------------------------------------------------------------------
# Fleet-wide capacity accounting
# ----------------------------------------------------------------------
def test_shards_share_one_capacity_ledger_under_overload():
    fleet = two_shard_fleet(
        overload=True,
        overload_policy=OverloadPolicy(capacity_horizon=100.0,
                                       utilization_cap=1.0))
    first = fleet.shards[0].overload.admission.capacity
    second = fleet.shards[1].overload.admission.capacity
    assert first is second
    # The budget counts the whole fleet's devices, and a commit by one
    # shard is visible to the other at the same window.
    assert first.available(0.0) == 6 * 100.0
    first.commit(0.0, 40.0)
    assert second.available(0.0) == 600.0 - 40.0


def test_capacity_ledger_windows_are_order_independent():
    fleet = two_shard_fleet(
        overload=True,
        overload_policy=OverloadPolicy(capacity_horizon=10.0,
                                       utilization_cap=1.0))
    ledger = fleet.shards[0].overload.admission.capacity
    # Shard clocks advance independently: a commit to window 1 must
    # survive a read at window 0 by a slower shard.
    ledger.commit(15.0, 5.0)
    assert ledger.available(2.0) == 60.0       # window 0 untouched
    assert ledger.available(15.0) == 60.0 - 5.0
    ledger.commit(2.0, 10.0)
    assert ledger.available(15.0) == 55.0      # window 1 unaffected
    assert ledger.available(8.0) == 50.0


def test_single_shard_fleet_keeps_per_engine_ledgers():
    config = EngineConfig(shards=1, overload=True)
    fleet = ShardedEngine(config=config, seed=0)
    # No rewiring on the delegation path: byte-identity with a plain
    # engine includes its private ledger.
    plain = AortaEngine(config=EngineConfig(overload=True))
    assert type(fleet.shards[0].overload.admission.capacity) \
        is type(plain.overload.admission.capacity)


# ----------------------------------------------------------------------
# Aggregated reporting
# ----------------------------------------------------------------------
def test_fleet_statistics_aggregate_sum_max_and_width():
    fleet = two_shard_fleet()
    fleet.execute(FIGURE_1_AQ)
    from repro import SensorStimulus
    for index in range(2):
        fleet.inject(f"mote{index:02d}",
                     SensorStimulus("accel_x", start=2.0 + index,
                                    duration=3.0, magnitude=850.0))
    fleet.start()
    fleet.run(until=30.0)
    stats = fleet.statistics()
    per_shard = fleet.shard_statistics()
    assert stats["shards"] == 2
    assert stats["devices"] == sum(s["devices"] for s in per_shard) == 6
    assert stats["requests_serviced"] == sum(
        s["requests_serviced"] for s in per_shard) == 2
    assert stats["virtual_time"] == max(
        s["virtual_time"] for s in per_shard) == 30.0
    assert stats["queries"] == 2


def test_device_report_is_the_disjoint_union():
    fleet = two_shard_fleet()
    report = fleet.device_report()
    assert len(report) == 6
    assert set(report) == {f"cam{i:02d}{side}" for i in range(2)
                           for side in "ab"} \
        | {"mote00", "mote01"}
