"""Property tests for device-to-shard placement policies.

Placement is the routing keystone of the sharded fleet: admission,
stimulus injection and request routing all key on it, so it must be a
deterministic, total function of the device id alone — independent of
process, admission order and the rest of the fleet.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShardingError
from repro.shard import HashPlacement, PlacementPolicy, RegionPlacement

device_ids = st.text(
    alphabet=st.characters(codec="utf-8", categories=("L", "N", "P")),
    min_size=1, max_size=32)
shard_counts = st.integers(min_value=1, max_value=64)


# ----------------------------------------------------------------------
# HashPlacement
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(device_id=device_ids, n_shards=shard_counts)
def test_hash_placement_is_deterministic_and_total(device_id, n_shards):
    # Two independently constructed policies agree, and the answer is
    # always a valid shard index: every device is owned by exactly one
    # shard of the fleet.
    first = HashPlacement(n_shards)
    second = HashPlacement(n_shards)
    shard = first.shard_of(device_id)
    assert 0 <= shard < n_shards
    assert second.shard_of(device_id) == shard
    assert first.shard_of(device_id) == shard  # repeat call, same answer


@settings(max_examples=50, deadline=None)
@given(ids=st.lists(device_ids, min_size=1, max_size=20, unique=True),
       n_shards=shard_counts, seed=st.randoms())
def test_hash_placement_is_stable_under_device_list_reordering(
        ids, n_shards, seed):
    # The assignment of one device must not depend on which other
    # devices exist or the order they are placed in.
    placement = HashPlacement(n_shards)
    original = {device_id: placement.shard_of(device_id)
                for device_id in ids}
    shuffled = list(ids)
    seed.shuffle(shuffled)
    reordered = {device_id: HashPlacement(n_shards).shard_of(device_id)
                 for device_id in shuffled}
    assert reordered == original


def test_hash_placement_single_shard_owns_everything():
    placement = HashPlacement(1)
    for device_id in ("cam1", "mote7", "phone-x", "a" * 64):
        assert placement.shard_of(device_id) == 0


def test_hash_placement_spreads_a_real_fleet():
    # Not a distribution theorem — a pinned sanity check that a 1000
    # camera fleet does not collapse onto a few of 8 shards.
    placement = HashPlacement(8)
    loads = [0] * 8
    for index in range(1000):
        loads[placement.shard_of(f"cam{index:04d}")] += 1
    assert all(load > 0 for load in loads)
    assert max(loads) < 2 * (1000 // 8)


def test_hash_placement_rejects_empty_id_and_bad_counts():
    with pytest.raises(ShardingError):
        HashPlacement(8).shard_of("")
    with pytest.raises(ShardingError):
        HashPlacement(0)
    with pytest.raises(ShardingError):
        HashPlacement(-3)


# ----------------------------------------------------------------------
# RegionPlacement
# ----------------------------------------------------------------------
def test_region_placement_maps_sorted_regions_to_shard_indices():
    placement = RegionPlacement.from_regions({
        "west": ["cam3", "cam4"],
        "east": ["cam1", "cam2"],
    })
    # Region names sort ("east" < "west") regardless of insertion order.
    assert placement.n_shards == 2
    assert placement.shard_of("cam1") == 0
    assert placement.shard_of("cam2") == 0
    assert placement.shard_of("cam3") == 1
    assert placement.shard_of("cam4") == 1


def test_region_placement_rejects_unknown_devices_with_clear_error():
    placement = RegionPlacement.from_regions({"east": ["cam1"]})
    with pytest.raises(ShardingError) as excinfo:
        placement.shard_of("ghost9")
    message = str(excinfo.value)
    assert "ghost9" in message
    assert "region" in message


def test_region_placement_rejects_duplicates_and_bad_assignments():
    with pytest.raises(ShardingError):
        RegionPlacement.from_regions({"east": ["cam1"], "west": ["cam1"]})
    with pytest.raises(ShardingError):
        RegionPlacement(2, {"cam1": 2})
    with pytest.raises(ShardingError):
        RegionPlacement(2, {"cam1": -1})
    with pytest.raises(ShardingError):
        RegionPlacement.from_regions({})


@settings(max_examples=50, deadline=None)
@given(ids=st.lists(device_ids, min_size=1, max_size=12, unique=True),
       n_shards=st.integers(min_value=1, max_value=8))
def test_region_placement_round_trips_explicit_assignments(ids, n_shards):
    assignments = {device_id: index % n_shards
                   for index, device_id in enumerate(ids)}
    placement = RegionPlacement(n_shards, assignments)
    for device_id, shard in assignments.items():
        assert placement.shard_of(device_id) == shard


def test_both_policies_satisfy_the_placement_protocol():
    assert isinstance(HashPlacement(4), PlacementPolicy)
    assert isinstance(
        RegionPlacement.from_regions({"east": ["cam1"]}), PlacementPolicy)
