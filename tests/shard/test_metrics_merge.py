"""``MetricsRegistry.merge``/``relabeled`` under shard labels.

The fleet metric path is: each shard writes an unlabeled registry →
the coordinator copies it with ``shard=<i>`` stamped on every series →
copies merge into one fleet registry. These tests pin the algebra that
makes the result trustworthy: merged values are the sum (counters,
histograms) / max (gauges) of the per-shard values, merging is
associative and commutative across three-plus shards, and the CLI
renders the shard labels.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.errors import AortaError
from repro.obs.metrics import MetricsRegistry
from tests.shard.scenarios import region_fleet_scenario


def _registry(counter_values, gauge_values, samples):
    registry = MetricsRegistry()
    for value in counter_values:
        registry.counter("work.done", kind="a").inc(value)
    for value in gauge_values:
        registry.gauge("queue.depth", kind="a").set(value)
    for value in samples:
        registry.histogram("latency.seconds").observe(value)
    return registry


amounts = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=0, max_size=5)


# ----------------------------------------------------------------------
# The merge algebra
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(a=amounts, b=amounts, c=amounts)
def test_merge_is_associative_and_commutative_across_shards(a, b, c):
    def build(label_order):
        merged = MetricsRegistry()
        shards = {"0": a, "1": b, "2": c}
        for label in label_order:
            merged.merge(
                _registry(shards[label], shards[label],
                          shards[label]).relabeled(shard=label))
        return merged.snapshot()

    baseline = build(["0", "1", "2"])
    assert build(["2", "0", "1"]) == baseline
    assert build(["1", "2", "0"]) == baseline


@settings(max_examples=50, deadline=None)
@given(a=amounts, b=amounts)
def test_merged_equals_sum_of_counters_and_max_of_gauges(a, b):
    merged = MetricsRegistry()
    merged.merge(_registry(a, a, []))
    merged.merge(_registry(b, b, []))
    snapshot = merged.snapshot()
    if a or b:
        assert snapshot["counters"]["work.done{kind=a}"] \
            == pytest.approx(sum(a) + sum(b))
        expected_gauge = max([values[-1] for values in (a, b) if values],
                             default=0.0)
        assert snapshot["gauges"]["queue.depth{kind=a}"] \
            == pytest.approx(expected_gauge)


def test_merged_histograms_add_counts_and_combine_bounds():
    merged = MetricsRegistry()
    merged.merge(_registry([], [], [0.002, 0.2]))
    merged.merge(_registry([], [], [7.0]))
    histogram = merged.snapshot()["histograms"]["latency.seconds"]
    assert histogram["count"] == 3
    assert histogram["sum"] == pytest.approx(7.202)
    assert histogram["min"] == 0.002
    assert histogram["max"] == 7.0


# ----------------------------------------------------------------------
# relabeled()
# ----------------------------------------------------------------------
def test_relabeled_stamps_every_series_and_preserves_values():
    registry = _registry([3.0], [5.0], [0.1])
    labeled = registry.relabeled(shard=2)
    snapshot = labeled.snapshot()
    assert snapshot["counters"] == {"work.done{kind=a,shard=2}": 3.0}
    assert snapshot["gauges"] == {"queue.depth{kind=a,shard=2}": 5.0}
    assert list(snapshot["histograms"]) == ["latency.seconds{shard=2}"]
    # The copy is deep: mutating it leaves the source untouched.
    labeled.counter("work.done", kind="a", shard=2).inc(10.0)
    assert registry.snapshot()["counters"]["work.done{kind=a}"] == 3.0


def test_relabeled_refuses_label_collisions():
    registry = MetricsRegistry()
    registry.counter("work.done", shard="already").inc()
    with pytest.raises(AortaError, match="already carries"):
        registry.relabeled(shard=0)


def test_relabeling_keeps_per_shard_series_distinct_after_merge():
    merged = MetricsRegistry()
    for index in range(3):
        merged.merge(_registry([float(index + 1)], [], []).relabeled(
            shard=index))
    counters = merged.snapshot()["counters"]
    assert counters == {
        "work.done{kind=a,shard=0}": 1.0,
        "work.done{kind=a,shard=1}": 2.0,
        "work.done{kind=a,shard=2}": 3.0,
    }


# ----------------------------------------------------------------------
# End to end: the fleet metric surface and the CLI
# ----------------------------------------------------------------------
def test_fleet_metrics_equal_merge_of_shard_snapshots():
    fleet = region_fleet_scenario(3, True)
    merged = MetricsRegistry()
    for shard in fleet.shards:
        merged.merge(shard.obs.registry)
    assert fleet.metrics() == merged.snapshot()
    labeled = fleet.shard_labeled_metrics()
    for section in ("counters", "gauges", "histograms"):
        for key in labeled[section]:
            assert "shard=" in key


def test_cli_metrics_renders_shard_labeled_output(capsys):
    assert main(["metrics", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shard=0" in out
    assert "shard=1" in out
    assert "engine.runs" in out


def test_cli_metrics_shards_json_output(capsys):
    import json
    assert main(["metrics", "--shards", "2", "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert any("shard=1" in key for key in snapshot["counters"])
