"""Sharded mirrors of the canonical golden-harness scenarios.

Each builder replays a scenario from :mod:`tests.obs.scenarios` through
:class:`~repro.shard.ShardedEngine` with the *same device construction
order, the same statement order and the same run calls* — so a 1-shard
fleet must produce a normalized dump byte-identical to the plain
engine's, and any coordinator overhead on the delegation path fails
the equivalence suite immediately.

``region_fleet_scenario`` is the genuinely sharded workload: N regions
of (two cameras + one sensor mote) under explicit region placement,
with one staggered stimulus per region — every shard detects and
services exactly its own region's events.
"""

from __future__ import annotations

from typing import Optional

from repro import (
    DeviceSpec,
    PanTiltZoomCamera,
    Point,
    RegionPlacement,
    SensorMote,
    SensorStimulus,
    ShardedEngine,
)
from repro.actions.request import ActionRequest
from repro.devices.failures import FailureInjector, OutageSpec
from tests.obs.scenarios import _config

FIGURE_1_AQ = '''CREATE AQ snapshot AS
    SELECT photo(c.ip, s.loc, "photos/admin")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''


def sharded_snapshot_scenario(observability: Optional[bool] = None,
                              **config_kwargs) -> ShardedEngine:
    """The Figure 1 snapshot through a 1-shard fleet.

    Mirrors :func:`tests.obs.scenarios.snapshot_scenario` call for
    call; extra keyword arguments pass through to
    :class:`~repro.EngineConfig` (e.g. ``runtime="realtime"``,
    ``time_scale=0``).
    """
    config = _config(observability, **config_kwargs)
    fleet = ShardedEngine(config=config, seed=0)
    fleet.add_device("cam1", lambda env: PanTiltZoomCamera(
        env, "cam1", Point(0, 0), ip_address="10.0.0.1"))
    fleet.add_device("cam2", lambda env: PanTiltZoomCamera(
        env, "cam2", Point(20, 0), facing=180.0, ip_address="10.0.0.2"))
    fleet.add_device("mote1", lambda env: SensorMote(
        env, "mote1", Point(5, 3), noise_amplitude=0.0))
    fleet.execute(FIGURE_1_AQ)
    fleet.inject("mote1", SensorStimulus("accel_x", start=2.0,
                                         duration=3.0, magnitude=850.0))
    fleet.start()
    fleet.run(until=30.0)
    return fleet


def sharded_continuous_outage_scenario(
    observability: Optional[bool] = None,
    **config_kwargs,
) -> ShardedEngine:
    """The continuous-outage workload through a 1-shard fleet.

    Mirrors :func:`tests.obs.scenarios.continuous_outage_scenario`:
    the workload process, dispatcher start and outage injections run
    against the single shard's runtime exactly as the plain scenario
    runs them against its environment.
    """
    from repro import HealthPolicy, RetryPolicy
    config = _config(
        observability,
        probing=False,
        **config_kwargs,
        retry=RetryPolicy(max_attempts=2, backoff_base=0.5,
                          backoff_factor=2.0, backoff_max=4.0,
                          jitter=0.1, failover=True, max_dispatches=4),
        health=HealthPolicy(failure_threshold=2, quarantine_seconds=10.0,
                            backoff_factor=2.0, quarantine_max=40.0),
        lock_lease_seconds=30.0,
    )
    fleet = ShardedEngine(config=config, seed=0)
    cameras = []
    for index in range(3):
        camera = fleet.add_device(
            f"cam{index + 1}",
            lambda env, index=index: PanTiltZoomCamera(
                env, f"cam{index + 1}", Point(15.0 * index, 0.0),
                facing=0.0, view_half_angle=170.0, view_range=1000.0))
        cameras.append(camera)
    candidates = tuple(camera.device_id for camera in cameras)

    shard = fleet.shard(0)
    env = fleet.env
    action = shard.actions.get("photo")
    operator = shard.dispatcher.operator_for(action)

    def workload(env):
        serial = 0
        for tick in range(1, 21):           # t = 2, 4, ..., 40
            submit_at = 2.0 * tick
            delay = submit_at - env.now
            if delay > 0:
                yield env.timeout(delay)
            serial += 1
            operator.submit(ActionRequest(
                action_name="photo",
                arguments={"target": Point(10.0 + tick, 5.0),
                           "directory": "photos"},
                created_at=env.now,
                candidates=candidates,
                request_id=f"r{serial:02d}",
            ))

    env.process(workload(env))
    shard.dispatcher.start()

    injector = FailureInjector(env)
    injector.schedule_outage(cameras[0], OutageSpec(
        device_id="cam1", start=8.0, duration=16.0, kind="offline"))
    injector.schedule_outage(cameras[1], OutageSpec(
        device_id="cam2", start=14.0, duration=6.0, kind="crash"))

    fleet.run(until=70.0)
    return fleet


# ----------------------------------------------------------------------
# The genuinely sharded workload
# ----------------------------------------------------------------------
def region_layout(n_regions: int):
    """The region map of the N-region fleet: one region per shard."""
    return {
        f"region{index:02d}": [f"cam{index:02d}a", f"cam{index:02d}b",
                               f"mote{index:02d}"]
        for index in range(n_regions)
    }


def region_fleet_scenario(n_regions: int,
                          observability: Optional[bool] = None,
                          *, shards: Optional[int] = None,
                          run_until: Optional[float] = None,
                          **config_kwargs) -> ShardedEngine:
    """N Figure-1 regions under region placement, one stimulus each.

    ``shards`` defaults to ``n_regions`` (one region per shard); pass
    ``shards=1`` to run the identical workload on a single shard for
    serviced-set equivalence checks. Region devices are disjoint, so
    the serviced set must not depend on the sharding. Device factories
    are :class:`~repro.DeviceSpec` values, so the same builder drives
    serial fleets and parallel ones (``parallel=True`` in
    ``config_kwargs``) — parallel workers replay the specs over their
    pipes.
    """
    n_shards = n_regions if shards is None else shards
    regions = region_layout(n_regions)
    if n_shards == n_regions:
        placement = RegionPlacement.from_regions(regions)
    else:
        assignments = {
            device_id: index % n_shards
            for index, name in enumerate(sorted(regions))
            for device_id in regions[name]
        }
        placement = RegionPlacement(n_shards, assignments)
    config = _config(observability, shards=n_shards, **config_kwargs)
    fleet = ShardedEngine(config=config, placement=placement, seed=0)
    for index in range(n_regions):
        tag = f"{index:02d}"
        # Regions are geometrically disjoint (1 km apart) so coverage —
        # and therefore candidate sets — is region-local even when one
        # shard owns every region: the serviced work must not depend on
        # the sharding.
        offset = 1000.0 * index
        fleet.add_device(f"cam{tag}a", DeviceSpec(
            PanTiltZoomCamera, f"cam{tag}a", Point(offset, 0)))
        fleet.add_device(f"cam{tag}b", DeviceSpec(
            PanTiltZoomCamera, f"cam{tag}b", Point(offset + 20, 0),
            facing=180.0))
        fleet.add_device(f"mote{tag}", DeviceSpec(
            SensorMote, f"mote{tag}", Point(offset + 5, 3),
            noise_amplitude=0.0))
    fleet.execute(FIGURE_1_AQ)
    for index in range(n_regions):
        fleet.inject(f"mote{index:02d}",
                     SensorStimulus("accel_x", start=2.0 + index,
                                    duration=3.0, magnitude=850.0))
    fleet.start()
    fleet.run(until=run_until if run_until is not None
              else 30.0 + n_regions)
    return fleet
