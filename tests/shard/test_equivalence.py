"""Shard-equivalence: the fleet must not change what gets computed.

Two layers of guarantee:

* **1-shard identity** — a ``ShardedEngine`` with ``shards=1`` is a
  pure pass-through, so its normalized dump (full trace, statistics,
  serviced set, metric snapshot) must be *byte-identical* to the plain
  engine's on the canonical golden scenarios, on both runtime
  backends, with observability on and off.
* **N-shard serviced-set equivalence** — on workloads whose device
  partitions are disjoint (the sharding contract), the set of serviced
  requests must be identical however many shards the fleet is split
  into: sharding changes who schedules, never what gets serviced.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.obs.golden import diff_dumps, dump_engine, render_diff
from tests.obs.scenarios import (
    continuous_outage_scenario,
    snapshot_scenario,
)
from tests.shard.scenarios import (
    region_fleet_scenario,
    sharded_continuous_outage_scenario,
    sharded_snapshot_scenario,
)

PAIRS = {
    "snapshot": (snapshot_scenario, sharded_snapshot_scenario),
    "continuous_outage": (continuous_outage_scenario,
                          sharded_continuous_outage_scenario),
}

BACKENDS = {
    "virtual": {},
    "realtime": {"runtime": "realtime", "time_scale": 0.0},
}


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name", sorted(PAIRS))
@pytest.mark.parametrize("observability", [None, True],
                         ids=["obs-off", "obs-on"])
def test_one_shard_fleet_is_byte_identical_to_plain_engine(
        name, backend, observability):
    plain_scenario, sharded_scenario = PAIRS[name]
    config_kwargs = dict(BACKENDS[backend])
    plain = dump_engine(plain_scenario(observability, **config_kwargs))
    fleet = dump_engine(sharded_scenario(observability, **config_kwargs))
    differences = diff_dumps(plain, fleet)
    assert not differences, render_diff(
        f"{name} ({backend}, plain vs shards=1)", differences)


def test_one_shard_fleet_backend_and_clock_match_plain_engine():
    plain = snapshot_scenario(None)
    fleet = sharded_snapshot_scenario(None)
    assert fleet.env.backend_name == plain.env.backend_name
    assert fleet.env.now == plain.env.now
    assert fleet.n_shards == 1


# ----------------------------------------------------------------------
# N-shard equivalence on disjoint-device workloads
# ----------------------------------------------------------------------
def _serviced_ids(fleet):
    return sorted(request.request_id
                  for request in fleet.completed_requests
                  if request.state.value == "serviced")


@settings(max_examples=6, deadline=None)
@given(n_regions=st.integers(min_value=2, max_value=4))
def test_sharded_serviced_set_equals_single_shard_on_disjoint_regions(
        n_regions):
    # Same N-region workload, split N ways vs. not at all: the
    # serviced sets must be permutation-equivalent (equal as sets;
    # completion interleaving across shard clocks may differ).
    sharded = region_fleet_scenario(n_regions)
    single = region_fleet_scenario(n_regions, shards=1)
    assert sharded.n_shards == n_regions
    assert single.n_shards == 1
    sharded_ids = _serviced_ids(sharded)
    single_ids = _serviced_ids(single)
    assert len(sharded_ids) == n_regions  # one photo per region fired
    # Auto-assigned request ids depend on process-global counters, so
    # compare by count and by which queries produced serviced work.
    assert len(sharded_ids) == len(single_ids)
    sharded_devices = sorted(
        request.assigned_device for request in sharded.completed_requests
        if request.state.value == "serviced")
    single_devices = sorted(
        request.assigned_device for request in single.completed_requests
        if request.state.value == "serviced")
    assert sharded_devices == single_devices


@settings(max_examples=4, deadline=None)
@given(n_regions=st.integers(min_value=2, max_value=3),
       n_shards=st.integers(min_value=2, max_value=3))
def test_region_workload_is_shard_count_invariant(n_regions, n_shards):
    # Regions need not map 1:1 onto shards: any disjoint partition of
    # the device space services the same work.
    base = region_fleet_scenario(n_regions, shards=1)
    split = region_fleet_scenario(n_regions, shards=min(n_shards,
                                                        n_regions))
    assert len(_serviced_ids(base)) == len(_serviced_ids(split))
    base_devices = sorted(
        request.assigned_device for request in base.completed_requests
        if request.state.value == "serviced")
    split_devices = sorted(
        request.assigned_device for request in split.completed_requests
        if request.state.value == "serviced")
    assert base_devices == split_devices


def _drop_wallclock(snapshot):
    # Same convention as the golden harness: wallclock metrics measure
    # host time, not virtual time, and are not reproducible.
    return {section: {key: value for key, value in entries.items()
                      if "wallclock" not in key}
            for section, entries in snapshot.items()}


def test_identical_multi_shard_runs_are_deterministic():
    first = region_fleet_scenario(4, True)
    second = region_fleet_scenario(4, True)
    assert first.statistics() == second.statistics()
    # Request ids are process-global counters; device assignments are
    # the run-content invariant.
    assert ([r.assigned_device for r in first.completed_requests]
            == [r.assigned_device for r in second.completed_requests])
    assert _drop_wallclock(first.metrics()) \
        == _drop_wallclock(second.metrics())
    assert _drop_wallclock(first.shard_labeled_metrics()) \
        == _drop_wallclock(second.shard_labeled_metrics())
