"""Parallel fleet execution: identity, failure handling, teardown.

The load-bearing property is byte-identity: a parallel fleet's
normalized per-shard dumps must equal the serial lockstep
coordinator's, across backends, shard counts, observability and
overload control — pinned here with a hypothesis sweep on the thread
backend (cheap) and a single process-backend spot check (spawn costs
~1s per worker). The rest is the unhappy path: worker death must
surface as :class:`ShardingError` naming the shard instead of hanging
the barrier, and teardown must never leak processes or threads.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EngineConfig
from repro.errors import AortaError, ParseError, ShardingError, \
    SimulationError
from repro.obs.dump import diff_dumps
from repro.shard import DeviceSpec, ShardedEngine
from tests.shard.scenarios import region_fleet_scenario

BACKENDS = ("thread", "process")


def dumps_of(n_regions: int, *, shards=None, parallel=False,
             backend="thread", **kwargs):
    fleet = region_fleet_scenario(
        n_regions, shards=shards, parallel=parallel,
        parallel_backend=backend, **kwargs)
    try:
        return fleet.shard_dumps(), fleet.statistics(), fleet.query_report()
    finally:
        fleet.close()


def assert_identical(serial, parallel):
    for index, (expected, actual) in enumerate(zip(serial, parallel)):
        differences = diff_dumps(expected, actual)
        assert not differences, (
            f"shard {index} parallel dump diverges from serial:\n  "
            + "\n  ".join(differences))


# ----------------------------------------------------------------------
# Byte-identity with serial lockstep
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    n_regions=st.integers(min_value=2, max_value=4),
    observability=st.booleans(),
    overload=st.booleans(),
)
def test_thread_parallel_is_byte_identical_to_serial(
        n_regions, observability, overload):
    serial_dumps, serial_stats, serial_queries = dumps_of(
        n_regions, observability=observability, overload=overload)
    parallel_dumps, parallel_stats, parallel_queries = dumps_of(
        n_regions, parallel=True, backend="thread",
        observability=observability, overload=overload)
    assert_identical(serial_dumps, parallel_dumps)
    assert parallel_stats == serial_stats
    assert parallel_queries == serial_queries


def test_process_parallel_is_byte_identical_to_serial():
    serial_dumps, serial_stats, _ = dumps_of(2, observability=True)
    parallel_dumps, parallel_stats, _ = dumps_of(
        2, parallel=True, backend="process", observability=True)
    assert_identical(serial_dumps, parallel_dumps)
    assert parallel_stats == serial_stats


def test_parallel_runs_are_deterministic_across_repeats():
    first = dumps_of(3, parallel=True, backend="thread")[0]
    second = dumps_of(3, parallel=True, backend="thread")[0]
    assert_identical(first, second)


def test_fewer_shards_than_regions_stays_identical():
    serial = dumps_of(4, shards=2)[0]
    parallel = dumps_of(4, shards=2, parallel=True, backend="thread")[0]
    assert_identical(serial, parallel)


# ----------------------------------------------------------------------
# Facade behaviour in parallel mode
# ----------------------------------------------------------------------
def test_parallel_on_one_shard_is_forced_serial():
    # One shard has nothing to parallelize; the pass-through path (and
    # its byte-identity with a plain engine) must win.
    fleet = ShardedEngine(
        config=EngineConfig(shards=1, parallel=True), seed=0)
    assert not fleet.parallel
    assert len(fleet.shards) == 1
    assert fleet.env is fleet.shards[0].env
    fleet.close()  # no-op on a serial fleet


def test_parallel_fleet_refuses_per_shard_object_access():
    fleet = region_fleet_scenario(2, run_until=1.0, parallel=True,
                                  parallel_backend="thread")
    try:
        with pytest.raises(ShardingError, match="worker"):
            fleet.shard(0)
        with pytest.raises(ShardingError, match="worker"):
            fleet.device("cam00a")
        with pytest.raises(ShardingError, match="per-shard"):
            fleet.env
    finally:
        fleet.close()


def test_parallel_fleet_rehydrates_framework_errors():
    fleet = region_fleet_scenario(2, run_until=1.0, parallel=True,
                                  parallel_backend="thread")
    try:
        with pytest.raises(ParseError):
            fleet.execute("CREATE AQ broken AS SELECT")
    finally:
        fleet.close()


def test_unpicklable_factory_names_device_spec():
    config = EngineConfig(shards=2, parallel=True,
                          parallel_backend="thread")
    fleet = ShardedEngine(config=config, seed=0)
    try:
        with pytest.raises(ShardingError, match="DeviceSpec"):
            fleet.add_device("cam1", lambda env: None)
    finally:
        fleet.close()


def test_parallel_budget_exhaustion_is_fleet_wide():
    fleet = region_fleet_scenario(2, run_until=0.5, parallel=True,
                                  parallel_backend="thread")
    try:
        with pytest.raises(SimulationError,
                           match="fleet event budget exhausted"):
            fleet.run(until=40.0, max_events=3)
    finally:
        fleet.close()


def test_round_breakdown_accounts_every_shard():
    fleet = region_fleet_scenario(3, parallel=True,
                                  parallel_backend="thread")
    try:
        breakdown = fleet.round_breakdown()
        assert breakdown["rounds"] > 0
        assert len(breakdown["per_shard"]) == 3
        for entry in breakdown["per_shard"]:
            assert entry["busy_s"] >= 0.0
            assert entry["barrier_wait_s"] >= 0.0
        snapshot = fleet.shard_labeled_metrics()
        assert any("shard.round." in key
                   for key in snapshot.get("counters", {}))
    finally:
        fleet.close()
    # A serial fleet has no barriers to account for.
    serial = region_fleet_scenario(2, run_until=1.0)
    assert serial.round_breakdown() is None


# ----------------------------------------------------------------------
# Worker death and teardown
# ----------------------------------------------------------------------
def test_worker_crash_raises_naming_the_shard():
    fleet = region_fleet_scenario(2, run_until=1.0, parallel=True,
                                  parallel_backend="process")
    workers = fleet._fleet.workers
    try:
        workers[1]._process.kill()
        workers[1]._process.join(timeout=10.0)
        with pytest.raises(ShardingError, match="shard 1"):
            fleet.run(until=40.0)
        # The failed fleet reaped every worker, not just the dead one.
        assert all(worker.dead for worker in workers)
        assert not any(worker.alive for worker in workers)
    finally:
        fleet.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_context_manager_exit_leaves_no_workers(backend):
    threads_before = threading.active_count()
    with region_fleet_scenario(2, run_until=2.0, parallel=True,
                               parallel_backend=backend) as fleet:
        assert fleet.parallel
        workers = fleet._fleet.workers
        assert all(worker.alive for worker in workers)
    assert not any(worker.alive for worker in workers)
    if backend == "thread":
        # Worker threads and the ledger service thread are all joined.
        assert threading.active_count() <= threads_before


def test_close_is_idempotent():
    fleet = region_fleet_scenario(2, run_until=1.0, parallel=True,
                                  parallel_backend="thread")
    fleet.close()
    fleet.close()
    with pytest.raises(ShardingError, match="died"):
        fleet.statistics()


# ----------------------------------------------------------------------
# DeviceSpec
# ----------------------------------------------------------------------
def test_device_spec_round_trips_through_pickle():
    import pickle

    from repro import PanTiltZoomCamera, Point
    spec = DeviceSpec(PanTiltZoomCamera, "cam9", Point(1, 2),
                      facing=90.0)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.factory is PanTiltZoomCamera
    assert clone.args == spec.args and clone.kwargs == spec.kwargs
    assert "PanTiltZoomCamera" in repr(clone)


def test_device_spec_builds_on_the_serial_path_too():
    from repro import PanTiltZoomCamera, Point
    fleet = ShardedEngine(config=EngineConfig(shards=1), seed=0)
    device = fleet.add_device("cam1", DeviceSpec(
        PanTiltZoomCamera, "cam1", Point(0, 0)))
    assert device is not None and device.device_id == "cam1"


def test_unknown_parallel_backend_is_refused():
    with pytest.raises(AortaError, match="parallel_backend"):
        EngineConfig(parallel_backend="greenlet")
