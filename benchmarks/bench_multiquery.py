"""Multi-query matching benchmark: predicate index vs the linear walk.

Registers a large population of AQs over one sensor fleet — the
pervasive-computing regime where thousands of applications watch the
same few physical tables — and drives synthetic scan rows through both
matching paths of the continuous executor:

* **scan-all** (``predicate_index=False``): every poll evaluates every
  query's event predicate against every row, O(queries x rows).
* **indexed** (``predicate_index=True``): each row is routed through
  the per-(table, attribute) interval/point index to exactly the
  queries whose bands admit it; only non-indexable residuals fall back
  to evaluation.

The query mix exercises every band shape: 93% narrow intervals on
``temperature``, 3% point predicates on ``light``, 3% open-ended
ranges on ``battery`` and 1% non-indexable OR residuals on the
accelerometer axes.

Gates, written to ``BENCH_multiquery.json``:

* **identity** — both paths detect the same events and emit the same
  requests (per-query counters and the trace sequence are equal).
* **deterministic** — rebuilding the indexed engine and repeating the
  detection epoch reproduces the summary exactly.
* **speedup_10x** — indexed matching sustains >= 10x the rows/sec of
  the linear walk at 100k registered AQs. Full runs only; ``--smoke``
  measures and records the ratio but does not gate it.

Usage::

    PYTHONPATH=src python benchmarks/bench_multiquery.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from _common import format_table, record, write_result  # noqa: E402

from repro import (  # noqa: E402
    AortaEngine,
    EngineConfig,
    Environment,
    PanTiltZoomCamera,
    Point,
)
from repro.comm.tuples import DeviceTuple  # noqa: E402
from repro.plan.planner import ContinuousPlan  # noqa: E402
from repro.query import BooleanOp, ColumnRef, Comparison, Literal  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_multiquery.json")

FULL_QUERIES = 100_000
SMOKE_QUERIES = 2_000
FULL_SENSORS = 8
SMOKE_SENSORS = 4

#: Matching epochs per path. The linear walk is ~two orders slower per
#: epoch, so it gets fewer; throughput is normalized to rows/sec.
FULL_LINEAR_EPOCHS = 2
FULL_INDEXED_EPOCHS = 20
SMOKE_LINEAR_EPOCHS = 2
SMOKE_INDEXED_EPOCHS = 10

#: Required indexed-vs-linear rows/sec ratio, full runs only.
TARGET_SPEEDUP = 10.0

#: Point predicates quantize light to this many distinct levels.
LIGHT_LEVELS = 41

#: Trace kinds compared between the two paths.
DETECTION_KINDS = ("event_detected", "request_emitted")


def event_predicate(i: int):
    """Deterministic band mix: function of the query index only."""
    kind = i % 100
    if kind < 93:
        # Narrow temperature interval somewhere in the [0, 1000) domain.
        lo = ((i * 7919) % 99_000) / 99.0
        return BooleanOp("AND", (
            Comparison(">=", ColumnRef("s", "temperature"), Literal(lo)),
            Comparison("<=", ColumnRef("s", "temperature"),
                       Literal(lo + 0.2)),
        ))
    if kind < 96:
        # Point predicate on a quantized light level.
        return Comparison("=", ColumnRef("s", "light"),
                          Literal(float((i % LIGHT_LEVELS) * 25)))
    if kind < 99:
        # Open-ended range; the synthetic rows keep battery < 99 so
        # these stay registered-but-quiet (the index must carry them).
        return Comparison(">", ColumnRef("s", "battery"),
                          Literal(99.0 + (i % 97) / 100.0))
    # Non-indexable residual: an OR over both accelerometer axes.
    return BooleanOp("OR", (
        Comparison(">", ColumnRef("s", "accel_x"),
                   Literal(990.0 + (i % 10))),
        Comparison(">", ColumnRef("s", "accel_y"), Literal(995.0)),
    ))


def make_rows(n_sensors: int):
    """One synthetic scan result: a row per sensor, fixed values."""
    rows = []
    for j in range(n_sensors):
        rows.append(DeviceTuple(
            device_type="sensor",
            device_id=f"s{j:03d}",
            values={
                "id": f"s{j:03d}",
                "loc_x": float(j * 10),
                "loc_y": 0.0,
                "accel_x": float((j * 29) % 1000),
                "accel_y": float((j * 31) % 1000),
                "temperature": ((j * 37) % 997) * 1000.0 / 997.0,
                "light": float(((j * 7) % LIGHT_LEVELS) * 25),
                "battery": ((j * 13) % 990) / 10.0,
            },
        ))
    return rows


def build_engine(indexed: bool, n_queries: int):
    """An engine with two cameras and ``n_queries`` registered AQs.

    Plans are constructed directly (no SQL parse) so registration time
    measures the executor, and the simulation never runs — detection is
    driven synchronously on synthetic rows.
    """
    env = Environment()
    config = EngineConfig(predicate_index=indexed, probing=False)
    engine = AortaEngine(env, config=config)
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0.0, 0.0),
                                        ip_address="10.0.0.1"))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(50.0, 0.0),
                                        ip_address="10.0.0.2"))
    photo = engine.actions.get("photo")
    started = time.perf_counter()
    for i in range(n_queries):
        engine.continuous.register(ContinuousPlan(
            query_name=f"aq{i:06d}",
            action=photo,
            event_alias="s",
            event_table="sensor",
            device_alias="c",
            device_table="camera",
            event_predicate=event_predicate(i),
            candidate_predicate=None,
            argument_expressions={
                "target": ColumnRef("s", "loc"),
                "directory": Literal("photos/bench"),
            },
        ))
    register_s = time.perf_counter() - started
    return engine, register_s


def detect(engine, rows) -> int:
    """One detection pass over ``rows`` on the engine's configured path."""
    continuous = engine.continuous
    if engine.config.predicate_index:
        return continuous._detect_indexed("sensor", rows)
    emitted = 0
    for query in list(continuous.catalog.readers("sensor")):
        if query.enabled:
            emitted += continuous._detect_events(query, rows)
    return emitted


def summarize(engine):
    """The behavioural fingerprint compared across paths and repeats."""
    counters = {}
    for name, query in sorted(engine.continuous.queries.items()):
        values = (query.events_detected, query.requests_emitted,
                  query.uncovered_events, query.requests_rejected)
        if any(values):
            counters[name] = values
    trace = [(rec.kind, tuple(sorted(rec.fields.items())))
             for rec in engine.tracer.records
             if rec.kind in DETECTION_KINDS]
    return {"counters": counters, "trace": trace}


def run_path(indexed: bool, n_queries: int, rows, epochs: int):
    """Build, verify one identity epoch, then time edge-suppressed epochs.

    The first epoch emits requests and fills the edge-trigger memory;
    the timed epochs re-scan the same rows, so every match is
    suppressed by the edge and the measurement is pure matching cost.
    """
    engine, register_s = build_engine(indexed, n_queries)
    detect(engine, rows)  # identity epoch: detections + emissions
    summary = summarize(engine)
    started = time.perf_counter()
    for _ in range(epochs):
        detect(engine, rows)
    elapsed = time.perf_counter() - started
    scanned = epochs * len(rows)
    result = {
        "path": "indexed" if indexed else "scan-all",
        "queries": n_queries,
        "register_s": round(register_s, 4),
        "epochs": epochs,
        "rows_scanned": scanned,
        "match_s": round(elapsed, 4),
        "rows_per_s": round(scanned / elapsed, 2) if elapsed > 0
        else float("inf"),
        "events_detected": sum(v[0] for v in summary["counters"].values()),
        "requests_emitted": sum(v[1] for v in summary["counters"].values()),
    }
    if indexed:
        result["index"] = engine.continuous.index_stats()
    return result, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small population; speedup measured, not gated")
    parser.add_argument("--queries", type=int, default=None,
                        help="override the registered-AQ population")
    args = parser.parse_args(argv)

    n_queries = args.queries if args.queries is not None else (
        SMOKE_QUERIES if args.smoke else FULL_QUERIES)
    n_sensors = SMOKE_SENSORS if args.smoke else FULL_SENSORS
    linear_epochs = SMOKE_LINEAR_EPOCHS if args.smoke \
        else FULL_LINEAR_EPOCHS
    indexed_epochs = SMOKE_INDEXED_EPOCHS if args.smoke \
        else FULL_INDEXED_EPOCHS
    rows = make_rows(n_sensors)

    print(f"scan-all walk: {n_queries} AQs x {n_sensors} sensors ...",
          flush=True)
    linear, linear_summary = run_path(False, n_queries, rows, linear_epochs)
    print(f"indexed matching: {n_queries} AQs x {n_sensors} sensors ...",
          flush=True)
    indexed, indexed_summary = run_path(True, n_queries, rows,
                                        indexed_epochs)
    print("indexed repeat (determinism) ...", flush=True)
    repeat, repeat_summary = run_path(True, n_queries, rows, 1)

    identity = linear_summary == indexed_summary
    deterministic = indexed_summary == repeat_summary \
        and indexed["events_detected"] == repeat["events_detected"]
    speedup = (indexed["rows_per_s"] / linear["rows_per_s"]
               if linear["rows_per_s"] else float("inf"))

    gates = {
        "identity": identity,
        "deterministic": deterministic,
    }
    if not args.smoke:
        # The speedup gate needs the full population: at smoke scale
        # fixed per-epoch overhead drowns the per-query savings.
        gates["speedup_10x"] = speedup >= TARGET_SPEEDUP

    payload = {
        "benchmark": "bench_multiquery",
        "smoke": args.smoke,
        "workload": (f"{n_queries} AQs over one sensor table "
                     f"({n_sensors} synthetic rows/scan): 93% "
                     f"temperature intervals, 3% light points, 3% "
                     f"open battery ranges, 1% OR residuals"),
        "linear": linear,
        "indexed": indexed,
        "speedup": {
            "ratio": round(speedup, 2),
            "target": TARGET_SPEEDUP,
            "gated": not args.smoke,
        },
        "identity": identity,
        "deterministic": deterministic,
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    verdict = "PASS" if exit_code == 0 else "FAIL"
    table = format_table(
        ("path", "queries", "register s", "match s", "rows/s"),
        [(linear["path"], linear["queries"], linear["register_s"],
          linear["match_s"], linear["rows_per_s"]),
         (indexed["path"], indexed["queries"], indexed["register_s"],
          indexed["match_s"], indexed["rows_per_s"])])
    body = (
        f"{table}\n"
        f"speedup: {speedup:.1f}x (target {TARGET_SPEEDUP:.0f}x"
        f"{', not gated in smoke' if args.smoke else ''})\n"
        f"identical detections/emissions across paths: {identity}\n"
        f"deterministic rebuild: {deterministic}\n"
        f"verdict: {verdict}\n"
        f"JSON: {os.path.relpath(JSON_PATH)}")
    record("multiquery", "Predicate-indexed multi-query matching", body)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
