"""Observability overhead and invariance benchmark.

Three gates on the metrics + span layer:

* **off-identical** — the fault-tolerance scenario run with the
  observability knob absent, and again with it explicitly off, must
  produce byte-identical normalized dumps, both equal to the
  pre-instrumentation golden capture (``tests/obs/goldens``). The
  default-off path is inert, not merely quiet.
* **overhead** — with observability *on*, scheduling and executing the
  paper's E10-scale batch (n=400 requests, m=100 devices, SRFAE) costs
  at most 10% more wall-clock than with it off.
* **deterministic** — every measured configuration dumps identically
  across two runs (traces, statistics, metrics, spans).

Writes a machine-readable ``BENCH_observability.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.dirname(__file__))

from _common import record, write_result  # noqa: E402

from repro.core.tracing import EngineTracer  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.scheduling import SrfaeScheduler  # noqa: E402
from repro.scheduling.executor import execute_schedule  # noqa: E402
from repro.sim import Environment  # noqa: E402

from bench_perf_regression import engine_oracle_problem  # noqa: E402
from tests.obs.golden import diff_dumps, dump_engine, load_golden  # noqa: E402
from tests.obs.scenarios import ft_scenario  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_observability.json")

#: The paper's E10 scale; the overhead gate runs here.
GATE_SIZE = (400, 100)
SMOKE_SIZE = (50, 20)

#: Accepted on-vs-off wall-clock overhead of the scheduling scenario.
MAX_OVERHEAD = 0.10


def canonical(dump: dict) -> str:
    """The byte representation compared across runs."""
    return json.dumps(dump, sort_keys=True)


def check_off_identical() -> dict:
    """Knob-absent vs knob-off vs pre-instrumentation golden."""
    unset = canonical(dump_engine(ft_scenario(observability=None)))
    off = canonical(dump_engine(ft_scenario(observability=False)))
    golden = load_golden("pre_instrumentation_ft")
    golden_differences = diff_dumps(golden, json.loads(off)) \
        if golden is not None else ["golden file missing"]
    return {
        "unset_equals_off": unset == off,
        "matches_pre_instrumentation_golden": not golden_differences,
        "golden_differences": golden_differences[:5],
    }


def check_on_deterministic() -> dict:
    """Two observability-on runs must dump identically."""
    first = canonical(dump_engine(ft_scenario(observability=True)))
    second = canonical(dump_engine(ft_scenario(observability=True)))
    return {"identical": first == second, "dump_bytes": len(first)}


def time_scheduling_scenario(n: int, m: int, *, observability: bool,
                             repeats: int) -> float:
    """Best-of wall-clock of scheduling + executing one n x m batch."""
    best = float("inf")
    for _ in range(repeats):
        problem = engine_oracle_problem(n, m, seed=0)
        if observability:
            obs = Observability(Environment(), tracer=EngineTracer(),
                                enabled=True)
        else:
            obs = None
        started = time.perf_counter()
        schedule = SrfaeScheduler(0).schedule(problem)
        execute_schedule(problem, schedule, obs=obs)
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller scheduling size, single repeat; "
                             "the overhead gate is not evaluated")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per mode (best-of)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    n, m = SMOKE_SIZE if args.smoke else GATE_SIZE
    repeats = 1 if args.smoke else args.repeats

    print("checking off-path invariance ...", flush=True)
    off_identical = check_off_identical()
    print("checking on-path determinism ...", flush=True)
    deterministic = check_on_deterministic()
    print(f"timing {n}x{m} scheduling scenario ...", flush=True)
    off_s = time_scheduling_scenario(n, m, observability=False,
                                     repeats=repeats)
    on_s = time_scheduling_scenario(n, m, observability=True,
                                    repeats=repeats)
    overhead = (on_s - off_s) / off_s if off_s > 0 else float("inf")

    gates = {
        "off_identical": off_identical["unset_equals_off"]
        and off_identical["matches_pre_instrumentation_golden"],
        "deterministic": deterministic["identical"],
    }
    if not args.smoke:
        # The overhead gate needs the full-size timing run; in smoke
        # mode it is skipped (not silently passed) and recorded below.
        gates["overhead"] = overhead <= MAX_OVERHEAD

    payload = {
        "benchmark": "bench_observability",
        "smoke": args.smoke,
        "scenario": {
            "invariance": "ft_scenario (bench_fault_tolerance --smoke "
                          "configuration, 100s + 60s drain)",
            "overhead": f"SRFAE schedule + kernel execution of one "
                        f"photo() batch, n={n} m={m}",
        },
        "timing": f"best of {repeats} repeat(s), wall-clock",
        "off_identical": off_identical,
        "deterministic": deterministic,
        "overhead": {
            "off_s": off_s,
            "on_s": on_s,
            "relative": overhead,
            "max_relative": MAX_OVERHEAD,
            "gated": not args.smoke,
        },
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    verdict = "PASS" if exit_code == 0 else "FAIL"
    body = (
        f"off path: unset==off {off_identical['unset_equals_off']}, "
        f"matches pre-instrumentation golden "
        f"{off_identical['matches_pre_instrumentation_golden']}\n"
        f"on path deterministic: {deterministic['identical']}\n"
        f"overhead @{n}x{m}: off {off_s * 1e3:.1f} ms, on "
        f"{on_s * 1e3:.1f} ms, +{overhead * 100.0:.1f}% "
        f"(limit {MAX_OVERHEAD * 100.0:.0f}%"
        f"{', not gated in smoke' if args.smoke else ''})\n"
        f"verdict: {verdict}\n"
        f"JSON: {os.path.relpath(JSON_PATH)}")
    record("observability", "Observability overhead and invariance", body)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
