"""E7 — Section 2.3 in-text claim: the cost model is accurate.

"Our results from a number of experiments have validated that our cost
model is reasonably accurate." We measure it directly: estimate a
photo() on a camera from its probed status, execute the action on the
simulated device, and compare estimated vs measured execution time
across many head positions and targets — including chained sequences
where each estimate must account for the previous action's status
change.
"""

import random

import pytest

from repro import AortaEngine, Environment, PanTiltZoomCamera, Point
from repro.devices.camera import HeadPosition

from _common import format_table, record

N_SINGLE = 40
N_SEQUENCES = 10
SEQUENCE_LENGTH = 5


def _random_target(rng):
    return Point(rng.uniform(-30, 30), rng.uniform(-30, 30))


def _set_head(camera, rng):
    pose = HeadPosition(pan=rng.uniform(-170, 170),
                        tilt=rng.uniform(-45, 90),
                        zoom=rng.uniform(1, 10))
    camera._motion.origin = pose
    camera._motion.target = pose
    camera._motion.duration = 0.0


def _measure(engine, camera, target):
    start = engine.env.now
    box = []

    def proc(env):
        photo = yield from camera.take_photo(target, "photos")
        box.append(photo)

    engine.env.process(proc(engine.env))
    engine.env.run()
    return engine.env.now - start


def run_experiment():
    rng = random.Random(13)
    env = Environment()
    engine = AortaEngine(env)
    # Full-circle mount so every random target is within coverage.
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0),
                               view_half_angle=180.0)
    engine.add_device(camera)

    errors = []
    for _ in range(N_SINGLE):
        _set_head(camera, rng)
        target = _random_target(rng)
        estimate = engine.cost_model.estimate(
            "photo", camera, {"target": target})
        actual = _measure(engine, camera, target)
        errors.append(abs(estimate.seconds - actual) / actual)

    sequence_errors = []
    for _ in range(N_SEQUENCES):
        _set_head(camera, rng)
        targets = [_random_target(rng) for _ in range(SEQUENCE_LENGTH)]
        estimates = engine.cost_model.estimate_sequence(
            "photo", camera, [{"target": t} for t in targets])
        for target, estimate in zip(targets, estimates):
            actual = _measure(engine, camera, target)
            sequence_errors.append(abs(estimate.seconds - actual) / actual)

    return errors, sequence_errors


@pytest.fixture(scope="module")
def measurements():
    return run_experiment()


def test_cost_model_accuracy_reproduction(measurements, benchmark):
    single, sequence = measurements
    rows = [
        ["single photo()", len(single),
         100 * sum(single) / len(single), 100 * max(single)],
        [f"chained x{SEQUENCE_LENGTH}", len(sequence),
         100 * sum(sequence) / len(sequence), 100 * max(sequence)],
    ]
    table = format_table(
        ["scenario", "samples", "mean error (%)", "max error (%)"], rows)
    record("cost_model",
           "Section 2.3: cost model estimated vs measured photo() time",
           table)

    env = Environment()
    engine = AortaEngine(env)
    camera = PanTiltZoomCamera(env, "cam1", Point(0, 0))
    engine.add_device(camera)
    target = Point(10, 10)
    benchmark.pedantic(
        lambda: engine.cost_model.estimate("photo", camera,
                                           {"target": target}),
        rounds=20, iterations=10)


def test_single_estimates_accurate(measurements):
    single, _ = measurements
    assert max(single) < 0.01  # estimates match the simulator exactly


def test_chained_estimates_accurate(measurements):
    """Status chaining keeps sequence estimates accurate — the property
    the schedulers depend on."""
    _, sequence = measurements
    assert max(sequence) < 0.01
