"""Scheduling-time regression benchmark: oracle, vector, incremental.

Three sections, one machine-readable ``BENCH_scheduling.json``.

**Oracle** times all five algorithms on *engine-oracle* problems — the
scheduling cost model is the dispatcher's :class:`_ActionCostAdapter`
over the real :class:`~repro.cost.model.CostModel` photo() pipeline
(quantity resolution + profile interpolation), exactly what a
dispatched batch pays per estimate — in three modes:

* ``uncached`` — ``cost_cache=False``, the pre-oracle behaviour: every
  ``(request, device, status)`` estimate re-runs the cost pipeline.
* ``cold`` — a fresh per-schedule :class:`CachingCostModel` (the
  scheduler default), hits only from repeats inside one run.
* ``warm`` — a shared persistent cache across schedules of the same
  recurring batch: the steady-state dispatcher scenario, where a
  periodic event re-emits the same action workload every poll and the
  oracle already holds every triple.

**Vector** times the numpy column kernel (``vectorize=True``) against
the scalar walk on the calibrated camera workload at 400x100 and
4000x1000, asserting byte-identical assignments. Skipped when numpy is
not installed (the scalar path is the shipped default).

**Incremental** times a warm-start re-schedule
(:class:`IncrementalScheduler`) of a recurring engine-oracle batch in
which 10% of the devices moved, against the full re-schedule the
dispatcher would otherwise run, and checks the warm-start identity
(an unchanged batch equals a full run bit-for-bit).

The acceptance gate is a real boolean in every mode: equivalence checks
(cache transparency, vector identity, incremental identity) always
count; the speedup floors (warm oracle >= 3x at 400x100, vectorized
SRFAE >= 5x / LERFA+SRFE >= 3x at 4000x1000, incremental >= 3x at 10%
dirt) are evaluated on full runs only. A gate miss fails the process.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from _common import ALGORITHM_ORDER, format_table, record, write_result  # noqa: E402

from repro.actions.request import ActionRequest  # noqa: E402
from repro.core.dispatcher import _ActionCostAdapter  # noqa: E402
from repro.core.engine import AortaEngine  # noqa: E402
from repro.devices.camera import PanTiltZoomCamera  # noqa: E402
from repro.geometry import Point  # noqa: E402
from repro.scheduling import (  # noqa: E402
    HAVE_NUMPY,
    CachingCostModel,
    IncrementalScheduler,
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SAParameters,
    SchedRequest,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
    uniform_camera_workload,
)
from repro.sim import Environment  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_scheduling.json")

#: (n requests, m devices); the last entry is the paper's E10 scale.
SIZES = ((20, 5), (100, 25), (400, 100))
SMOKE_SIZES = ((20, 5),)

#: The acceptance gate of the perf work: warm-oracle speedup floor for
#: the paper's algorithms at the largest size.
TARGET_SPEEDUP = 3.0
GATED_ALGORITHMS = ("SRFAE", "LERFA+SRFE")

#: Vector section: calibrated-camera workload sizes; the second is the
#: 10x-the-paper scale the vectorized kernel exists for.
VECTOR_SIZES = ((400, 100), (4000, 1000))
VECTOR_SMOKE_SIZES = ((20, 5),)
#: Per-algorithm vectorized-vs-scalar floors at the largest size. SRFAE
#: keys every (request, device) pair so it vectorizes hardest; LERFA's
#: scalar loop is already light, so its floor is lower.
VECTOR_TARGETS = {"SRFAE": 5.0, "LERFA+SRFE": 3.0}

#: Incremental section: engine-oracle size, dirty fraction and floor.
INCREMENTAL_SIZE = (400, 100)
INCREMENTAL_SMOKE_SIZE = (20, 5)
DIRTY_FRACTION = 0.10
INCREMENTAL_TARGET = 3.0


def engine_oracle_problem(n: int, m: int, seed: int = 0) -> Problem:
    """A photo() batch costed by the real engine cost model.

    m cameras scattered over a 100x100 m field, n requests aiming at
    random targets, every camera a candidate (the Figure 4 uniform
    shape). Estimates go through ``CostModel.estimate`` — the same
    resolver + profile path the dispatcher pays.
    """
    rng = random.Random(seed)
    env = Environment()
    engine = AortaEngine(env, seed=seed)
    cameras = {}
    for j in range(m):
        camera = PanTiltZoomCamera(
            env, f"cam{j + 1}",
            Point(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            facing=rng.uniform(-180.0, 180.0),
            view_half_angle=170.0, view_range=1000.0)
        engine.add_device(camera)
        cameras[camera.device_id] = camera
    device_ids = tuple(cameras)
    action = engine.actions.get("photo")
    statuses = {device_id: camera.physical_status()
                for device_id, camera in cameras.items()}
    requests = []
    for i in range(n):
        action_request = ActionRequest(
            action_name="photo",
            arguments={
                "target": Point(rng.uniform(0.0, 100.0),
                                rng.uniform(0.0, 100.0)),
                "directory": "/photos",
            },
            request_id=f"req{i + 1}",
            candidates=device_ids,
        )
        requests.append(SchedRequest(
            request_id=action_request.request_id,
            candidates=device_ids,
            payload=action_request,
        ))
    return Problem(
        requests=tuple(requests),
        device_ids=device_ids,
        cost_model=_ActionCostAdapter(engine.cost_model, action, cameras,
                                      statuses),
        label=f"engine-oracle photo n={n} m={m} seed={seed}",
    )


def scheduler_factory(name: str, n: int):
    """Factory taking ``cost_cache`` so each mode builds fresh state.

    SA gets a reduced annealing schedule at the larger sizes so the
    benchmark completes in minutes; the relative cached/uncached shape
    is unaffected (the same moves are evaluated in every mode).
    """
    if name == "SA":
        if n > 100:
            parameters = SAParameters(moves_per_temperature_per_request=4,
                                      max_evaluations=5_000)
        elif n > 20:
            parameters = SAParameters(moves_per_temperature_per_request=10,
                                      max_evaluations=20_000)
        else:
            parameters = SAParameters(moves_per_temperature_per_request=4,
                                      max_evaluations=2_000)
        return lambda cache: SimulatedAnnealingScheduler(
            0, parameters=parameters, cost_cache=cache)
    factory = {
        "LERFA+SRFE": LerfaSrfeScheduler,
        "SRFAE": SrfaeScheduler,
        "LS": ListScheduler,
        "RANDOM": RandomScheduler,
    }[name]
    return lambda cache: factory(0, cost_cache=cache)


def _time_schedule(make_scheduler, problem: Problem, cache, repeats: int):
    """Best-of-``repeats`` scheduling seconds plus last cache stats."""
    best = float("inf")
    stats = None
    for _ in range(repeats):
        scheduler = make_scheduler(cache)
        schedule = scheduler.schedule(problem)
        best = min(best, schedule.scheduling_seconds)
        stats = scheduler.last_cache_stats
    return best, stats, schedule.assignments


def bench_one(name: str, n: int, m: int, repeats: int) -> dict:
    problem = engine_oracle_problem(n, m, seed=0)
    make = scheduler_factory(name, n)

    uncached_s, _, reference = _time_schedule(make, problem, False, repeats)
    cold_s, cold_stats, cold_asg = _time_schedule(make, problem, True,
                                                  repeats)

    # Warm: one priming run fills the shared oracle, then the recurring
    # batch is re-scheduled against it (steady-state dispatch).
    shared = CachingCostModel(problem.cost_model)
    make(shared).schedule(problem)
    primed = shared.stats()
    warm_s, warm_stats, warm_asg = _time_schedule(make, problem, shared,
                                                  repeats)
    # last_cache_stats is cumulative over the shared cache's lifetime;
    # report the warm runs' own hit rate by diffing out the priming run.
    if warm_stats is not None:
        hits = warm_stats["hits"] - primed["hits"]
        misses = warm_stats["misses"] - primed["misses"]
        lookups = hits + misses
        warm_stats = {
            "hits": hits,
            "misses": misses,
            "entries": warm_stats["entries"],
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    if cold_asg != reference or warm_asg != reference:
        raise AssertionError(
            f"{name} n={n}: cached schedule differs from uncached")

    return {
        "n": n,
        "m": m,
        "uncached_s": uncached_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_cold": uncached_s / cold_s if cold_s > 0 else float("inf"),
        "speedup_warm": uncached_s / warm_s if warm_s > 0 else float("inf"),
        "cold_cache": cold_stats,
        "warm_cache": warm_stats,
    }


def bench_vector(name: str, n: int, m: int, repeats: int) -> dict:
    """Scalar vs vectorized scheduling time on the camera workload."""
    problem = uniform_camera_workload(n, m, seed=0)
    factory = {"SRFAE": SrfaeScheduler, "LERFA+SRFE": LerfaSrfeScheduler}[name]
    # The scalar walk at 4000x1000 runs minutes; one timing is plenty.
    scalar_repeats = repeats if n <= 400 else 1
    scalar_s = float("inf")
    for _ in range(scalar_repeats):
        schedule = factory(0).schedule(problem)
        scalar_s = min(scalar_s, schedule.scheduling_seconds)
    reference = schedule.assignments
    vector_s = float("inf")
    for _ in range(repeats):
        schedule = factory(0, vectorize=True).schedule(problem)
        vector_s = min(vector_s, schedule.scheduling_seconds)
    return {
        "n": n,
        "m": m,
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "speedup": scalar_s / vector_s if vector_s > 0 else float("inf"),
        "identical": schedule.assignments == reference,
    }


def bench_incremental(n: int, m: int, repeats: int) -> dict:
    """Warm-start re-schedule vs full re-schedule, 10% of devices dirty.

    Mirrors the dispatcher's steady state: one adapter + shared memo
    cache persist across batches; between batches 10% of the devices
    moved (their statuses perturbed, their cache entries invalidated),
    the rest are exactly where the previous schedule left them.
    """
    problem = engine_oracle_problem(n, m, seed=0)
    adapter = problem.cost_model
    devices = adapter._devices
    base = {device_id: dict(adapter.initial_status(device_id))
            for device_id in problem.device_ids}
    rng = random.Random(1)
    dirty = rng.sample(list(problem.device_ids),
                       max(1, int(m * DIRTY_FRACTION)))

    def statuses(perturbed: bool) -> dict:
        out = {device_id: dict(status)
               for device_id, status in base.items()}
        if perturbed:
            for device_id in dirty:
                out[device_id]["pan"] = out[device_id].get("pan", 0.0) + 17.0
        return out

    # Identity: an unchanged recurring batch must equal a full run
    # bit-for-bit (this is the correctness half of the gate).
    adapter.rebind(devices, statuses(False))
    warm = IncrementalScheduler(SrfaeScheduler(0))
    first = warm.schedule(problem)
    second = warm.schedule(problem)
    reference = SrfaeScheduler(0).schedule(problem)
    unchanged_identical = (
        first.assignments == reference.assignments
        and second.assignments == reference.assignments)

    # Baseline: the full re-schedule the dispatcher would otherwise run
    # on the perturbed batch (default per-schedule cold cache).
    adapter.rebind(devices, statuses(True))
    full_s = float("inf")
    for _ in range(repeats):
        schedule = SrfaeScheduler(0).schedule(problem)
        full_s = min(full_s, schedule.scheduling_seconds)

    # Incremental: prime on the base statuses, perturb + signal the
    # dirty devices, re-schedule warm. Re-primed per repeat so every
    # timing sees the same previous-batch state.
    incremental_s = float("inf")
    for _ in range(repeats):
        cache = CachingCostModel(adapter, track_devices=True)
        warm = IncrementalScheduler(SrfaeScheduler(0), cost_cache=cache)
        adapter.rebind(devices, statuses(False))
        warm.schedule(problem)
        adapter.rebind(devices, statuses(True))
        for device_id in dirty:
            warm.mark_dirty(device_id)
            cache.invalidate_device(device_id)
        schedule = warm.schedule(problem)
        incremental_s = min(incremental_s, schedule.scheduling_seconds)
    schedule.validate(problem)

    return {
        "n": n,
        "m": m,
        "algorithm": "SRFAE",
        "dirty_devices": len(dirty),
        "dirty_fraction": DIRTY_FRACTION,
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": (full_s / incremental_s if incremental_s > 0
                    else float("inf")),
        "unchanged_identical": unchanged_identical,
        "last_batch": {
            "reused": warm.stats.reused_requests,
            # Minus the priming full run's n re-placements.
            "replaced": warm.stats.replaced_requests - n,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smallest size only, single repeat (CI)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (best-of)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    sizes = SMOKE_SIZES if args.smoke else SIZES
    repeats = 1 if args.smoke else args.repeats

    results: dict = {}
    rows = []
    for n, m in sizes:
        for name in ALGORITHM_ORDER:
            cell = bench_one(name, n, m, repeats)
            results.setdefault(name, {})[f"{n}x{m}"] = cell
            hit_rate = (cell["warm_cache"] or {}).get("hit_rate", 0.0)
            rows.append((name, f"{n}x{m}",
                         cell["uncached_s"] * 1e3, cell["cold_s"] * 1e3,
                         cell["warm_s"] * 1e3, cell["speedup_warm"],
                         hit_rate))
            print(f"  {name:>10} {n}x{m}: uncached {cell['uncached_s']:.3f}s"
                  f"  warm {cell['warm_s']:.3f}s"
                  f"  ({cell['speedup_warm']:.1f}x)", flush=True)

    # ------------------------------------------------------------------
    # Vector section (skipped without numpy: the scalar default ships)
    # ------------------------------------------------------------------
    vector_results: dict = {}
    vector_identical = None
    if HAVE_NUMPY:
        vector_identical = True
        vector_sizes = VECTOR_SMOKE_SIZES if args.smoke else VECTOR_SIZES
        for n, m in vector_sizes:
            for name in VECTOR_TARGETS:
                cell = bench_vector(name, n, m, repeats)
                vector_results.setdefault(name, {})[f"{n}x{m}"] = cell
                vector_identical = vector_identical and cell["identical"]
                print(f"  {name:>10} {n}x{m} vector: "
                      f"scalar {cell['scalar_s']:.3f}s"
                      f"  vector {cell['vector_s']:.3f}s"
                      f"  ({cell['speedup']:.1f}x, identical="
                      f"{cell['identical']})", flush=True)
    else:
        print("  vector section skipped: numpy not installed", flush=True)

    # ------------------------------------------------------------------
    # Incremental section
    # ------------------------------------------------------------------
    inc_n, inc_m = INCREMENTAL_SMOKE_SIZE if args.smoke else INCREMENTAL_SIZE
    incremental_cell = bench_incremental(inc_n, inc_m, repeats)
    print(f"  incremental {inc_n}x{inc_m} "
          f"({incremental_cell['dirty_devices']} dirty): "
          f"full {incremental_cell['full_s']:.3f}s"
          f"  warm {incremental_cell['incremental_s']:.4f}s"
          f"  ({incremental_cell['speedup']:.1f}x, identical="
          f"{incremental_cell['unchanged_identical']})", flush=True)

    # ------------------------------------------------------------------
    # The gate: equivalence always counts; speedup floors on full runs
    # ------------------------------------------------------------------
    gate_size = "x".join(map(str, sizes[-1]))
    acceptance = {
        f"{name}@{gate_size}": round(
            results[name][gate_size]["speedup_warm"], 2)
        for name in GATED_ALGORITHMS
    }
    equivalence = {
        # bench_one raises on any cached-vs-uncached mismatch, so
        # reaching this point proves transparency for every cell.
        "cache_transparent": True,
        "vector_identical": vector_identical,
        "incremental_identity": incremental_cell["unchanged_identical"],
    }
    # None-valued equivalence checks (e.g. vector identity without
    # numpy) are skipped, not silently passed or failed.
    gates = {name: value for name, value in equivalence.items()
             if value is not None}
    vector_acceptance = None
    incremental_acceptance = None
    if not args.smoke:
        gates["oracle_speedup"] = all(
            results[name][gate_size]["speedup_warm"] >= TARGET_SPEEDUP
            for name in GATED_ALGORITHMS)
        vector_size = "x".join(map(str, VECTOR_SIZES[-1]))
        if HAVE_NUMPY:
            vector_acceptance = {
                f"{name}@{vector_size}": round(
                    vector_results[name][vector_size]["speedup"], 2)
                for name in VECTOR_TARGETS}
            gates["vector_speedup"] = all(
                vector_results[name][vector_size]["speedup"] >= floor
                for name, floor in VECTOR_TARGETS.items())
        incremental_acceptance = {
            f"SRFAE@{inc_n}x{inc_m}": round(incremental_cell["speedup"], 2),
            "target": INCREMENTAL_TARGET}
        gates["incremental_speedup"] = \
            incremental_cell["speedup"] >= INCREMENTAL_TARGET

    payload = {
        "benchmark": "bench_perf_regression",
        "workload": ("photo() batches costed by the engine CostModel via "
                     "_ActionCostAdapter (resolver + profile estimation "
                     "per call)"),
        "modes": {
            "uncached": "cost_cache=False (pre-oracle behaviour)",
            "cold": "fresh per-schedule CachingCostModel",
            "warm": ("shared persistent CachingCostModel across schedules "
                     "of the recurring batch (steady-state dispatch)"),
            "vector": ("vectorize=True numpy column kernel vs the scalar "
                       "walk, calibrated camera workload"),
            "incremental": ("IncrementalScheduler warm re-schedule vs full "
                            f"re-schedule, {DIRTY_FRACTION:.0%} of devices "
                            "dirty, engine-oracle workload"),
        },
        "smoke": args.smoke,
        "numpy": HAVE_NUMPY,
        "timing": f"best of {repeats} repeat(s), scheduling_seconds",
        "target_speedup": TARGET_SPEEDUP,
        "vector_targets": VECTOR_TARGETS,
        "incremental_target": INCREMENTAL_TARGET,
        "gate": {"size": gate_size, "algorithms": list(GATED_ALGORITHMS),
                 "speedups": acceptance,
                 "vector": vector_acceptance,
                 "incremental": incremental_acceptance,
                 "equivalence": equivalence},
        "results": results,
        "vector_results": vector_results,
        "incremental_result": incremental_cell,
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    table = format_table(
        ("algorithm", "size", "uncached ms", "cold ms", "warm ms",
         "warm speedup", "warm hit rate"), rows)
    scope = ("equivalence only (smoke)" if args.smoke
             else "equivalence + speedup floors")
    verdict = (f"gate [{scope}]: {'PASS' if exit_code == 0 else 'FAIL'} "
               f"oracle={acceptance} vector={vector_acceptance} "
               f"incremental={incremental_acceptance} "
               f"equivalence={equivalence}")
    record("perf_regression",
           "Scheduling-time regression: oracle, vector, incremental",
           table + "\n\n" + verdict +
           f"\nJSON: {os.path.relpath(JSON_PATH)}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
