"""Scheduling-time regression benchmark for the memoizing cost oracle.

Times all five algorithms on *engine-oracle* problems — the scheduling
cost model is the dispatcher's :class:`_ActionCostAdapter` over the real
:class:`~repro.cost.model.CostModel` photo() pipeline (quantity
resolution + profile interpolation), exactly what a dispatched batch
pays per estimate — in three modes:

* ``uncached`` — ``cost_cache=False``, the pre-oracle behaviour: every
  ``(request, device, status)`` estimate re-runs the cost pipeline.
* ``cold`` — a fresh per-schedule :class:`CachingCostModel` (the
  scheduler default), hits only from repeats inside one run.
* ``warm`` — a shared persistent cache across schedules of the same
  recurring batch: the steady-state dispatcher scenario, where a
  periodic event re-emits the same action workload every poll and the
  oracle already holds every triple.

Writes a machine-readable ``BENCH_scheduling.json`` at the repo root.
The acceptance gate is a >= 3x warm-vs-uncached scheduling-time speedup
for the paper's two algorithms (SRFAE and LERFA+SRFE) at the E10 scale
(n=400 requests, m=100 devices).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from _common import ALGORITHM_ORDER, format_table, record  # noqa: E402

from repro.actions.request import ActionRequest  # noqa: E402
from repro.core.dispatcher import _ActionCostAdapter  # noqa: E402
from repro.core.engine import AortaEngine  # noqa: E402
from repro.devices.camera import PanTiltZoomCamera  # noqa: E402
from repro.geometry import Point  # noqa: E402
from repro.scheduling import (  # noqa: E402
    CachingCostModel,
    LerfaSrfeScheduler,
    ListScheduler,
    Problem,
    RandomScheduler,
    SAParameters,
    SchedRequest,
    SimulatedAnnealingScheduler,
    SrfaeScheduler,
)
from repro.sim import Environment  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_scheduling.json")

#: (n requests, m devices); the last entry is the paper's E10 scale.
SIZES = ((20, 5), (100, 25), (400, 100))
SMOKE_SIZES = ((20, 5),)

#: The acceptance gate of the perf work: warm-oracle speedup floor for
#: the paper's algorithms at the largest size.
TARGET_SPEEDUP = 3.0
GATED_ALGORITHMS = ("SRFAE", "LERFA+SRFE")


def engine_oracle_problem(n: int, m: int, seed: int = 0) -> Problem:
    """A photo() batch costed by the real engine cost model.

    m cameras scattered over a 100x100 m field, n requests aiming at
    random targets, every camera a candidate (the Figure 4 uniform
    shape). Estimates go through ``CostModel.estimate`` — the same
    resolver + profile path the dispatcher pays.
    """
    rng = random.Random(seed)
    env = Environment()
    engine = AortaEngine(env, seed=seed)
    cameras = {}
    for j in range(m):
        camera = PanTiltZoomCamera(
            env, f"cam{j + 1}",
            Point(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            facing=rng.uniform(-180.0, 180.0),
            view_half_angle=170.0, view_range=1000.0)
        engine.add_device(camera)
        cameras[camera.device_id] = camera
    device_ids = tuple(cameras)
    action = engine.actions.get("photo")
    statuses = {device_id: camera.physical_status()
                for device_id, camera in cameras.items()}
    requests = []
    for i in range(n):
        action_request = ActionRequest(
            action_name="photo",
            arguments={
                "target": Point(rng.uniform(0.0, 100.0),
                                rng.uniform(0.0, 100.0)),
                "directory": "/photos",
            },
            request_id=f"req{i + 1}",
            candidates=device_ids,
        )
        requests.append(SchedRequest(
            request_id=action_request.request_id,
            candidates=device_ids,
            payload=action_request,
        ))
    return Problem(
        requests=tuple(requests),
        device_ids=device_ids,
        cost_model=_ActionCostAdapter(engine.cost_model, action, cameras,
                                      statuses),
        label=f"engine-oracle photo n={n} m={m} seed={seed}",
    )


def scheduler_factory(name: str, n: int):
    """Factory taking ``cost_cache`` so each mode builds fresh state.

    SA gets a reduced annealing schedule at the larger sizes so the
    benchmark completes in minutes; the relative cached/uncached shape
    is unaffected (the same moves are evaluated in every mode).
    """
    if name == "SA":
        if n > 100:
            parameters = SAParameters(moves_per_temperature_per_request=4,
                                      max_evaluations=5_000)
        elif n > 20:
            parameters = SAParameters(moves_per_temperature_per_request=10,
                                      max_evaluations=20_000)
        else:
            parameters = SAParameters(moves_per_temperature_per_request=4,
                                      max_evaluations=2_000)
        return lambda cache: SimulatedAnnealingScheduler(
            0, parameters=parameters, cost_cache=cache)
    factory = {
        "LERFA+SRFE": LerfaSrfeScheduler,
        "SRFAE": SrfaeScheduler,
        "LS": ListScheduler,
        "RANDOM": RandomScheduler,
    }[name]
    return lambda cache: factory(0, cost_cache=cache)


def _time_schedule(make_scheduler, problem: Problem, cache, repeats: int):
    """Best-of-``repeats`` scheduling seconds plus last cache stats."""
    best = float("inf")
    stats = None
    for _ in range(repeats):
        scheduler = make_scheduler(cache)
        schedule = scheduler.schedule(problem)
        best = min(best, schedule.scheduling_seconds)
        stats = scheduler.last_cache_stats
    return best, stats, schedule.assignments


def bench_one(name: str, n: int, m: int, repeats: int) -> dict:
    problem = engine_oracle_problem(n, m, seed=0)
    make = scheduler_factory(name, n)

    uncached_s, _, reference = _time_schedule(make, problem, False, repeats)
    cold_s, cold_stats, cold_asg = _time_schedule(make, problem, True,
                                                  repeats)

    # Warm: one priming run fills the shared oracle, then the recurring
    # batch is re-scheduled against it (steady-state dispatch).
    shared = CachingCostModel(problem.cost_model)
    make(shared).schedule(problem)
    primed = shared.stats()
    warm_s, warm_stats, warm_asg = _time_schedule(make, problem, shared,
                                                  repeats)
    # last_cache_stats is cumulative over the shared cache's lifetime;
    # report the warm runs' own hit rate by diffing out the priming run.
    if warm_stats is not None:
        hits = warm_stats["hits"] - primed["hits"]
        misses = warm_stats["misses"] - primed["misses"]
        lookups = hits + misses
        warm_stats = {
            "hits": hits,
            "misses": misses,
            "entries": warm_stats["entries"],
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    if cold_asg != reference or warm_asg != reference:
        raise AssertionError(
            f"{name} n={n}: cached schedule differs from uncached")

    return {
        "n": n,
        "m": m,
        "uncached_s": uncached_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup_cold": uncached_s / cold_s if cold_s > 0 else float("inf"),
        "speedup_warm": uncached_s / warm_s if warm_s > 0 else float("inf"),
        "cold_cache": cold_stats,
        "warm_cache": warm_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smallest size only, single repeat (CI)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per cell (best-of)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    sizes = SMOKE_SIZES if args.smoke else SIZES
    repeats = 1 if args.smoke else args.repeats

    results: dict = {}
    rows = []
    for n, m in sizes:
        for name in ALGORITHM_ORDER:
            cell = bench_one(name, n, m, repeats)
            results.setdefault(name, {})[f"{n}x{m}"] = cell
            hit_rate = (cell["warm_cache"] or {}).get("hit_rate", 0.0)
            rows.append((name, f"{n}x{m}",
                         cell["uncached_s"] * 1e3, cell["cold_s"] * 1e3,
                         cell["warm_s"] * 1e3, cell["speedup_warm"],
                         hit_rate))
            print(f"  {name:>10} {n}x{m}: uncached {cell['uncached_s']:.3f}s"
                  f"  warm {cell['warm_s']:.3f}s"
                  f"  ({cell['speedup_warm']:.1f}x)", flush=True)

    gate_size = "x".join(map(str, sizes[-1]))
    acceptance = {
        f"{name}@{gate_size}": round(
            results[name][gate_size]["speedup_warm"], 2)
        for name in GATED_ALGORITHMS
    }
    gate_pass = all(results[name][gate_size]["speedup_warm"]
                    >= TARGET_SPEEDUP for name in GATED_ALGORITHMS)

    payload = {
        "benchmark": "bench_perf_regression",
        "workload": ("photo() batches costed by the engine CostModel via "
                     "_ActionCostAdapter (resolver + profile estimation "
                     "per call)"),
        "modes": {
            "uncached": "cost_cache=False (pre-oracle behaviour)",
            "cold": "fresh per-schedule CachingCostModel",
            "warm": ("shared persistent CachingCostModel across schedules "
                     "of the recurring batch (steady-state dispatch)"),
        },
        "smoke": args.smoke,
        "timing": f"best of {repeats} repeat(s), scheduling_seconds",
        "target_speedup": TARGET_SPEEDUP,
        "gate": {"size": gate_size, "algorithms": list(GATED_ALGORITHMS),
                 "speedups": acceptance,
                 "pass": gate_pass if not args.smoke else None},
        "results": results,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    table = format_table(
        ("algorithm", "size", "uncached ms", "cold ms", "warm ms",
         "warm speedup", "warm hit rate"), rows)
    verdict = ("smoke run (gate not evaluated)" if args.smoke else
               f"gate ({' and '.join(GATED_ALGORITHMS)} >= "
               f"{TARGET_SPEEDUP:.0f}x at {gate_size}): "
               f"{'PASS' if gate_pass else 'FAIL'} {acceptance}")
    record("perf_regression",
           "Scheduling-time regression: memoizing cost oracle",
           table + "\n\n" + verdict +
           f"\nJSON: {os.path.relpath(JSON_PATH)}")
    return 0 if (args.smoke or gate_pass) else 1


if __name__ == "__main__":
    raise SystemExit(main())
