"""E2 — Figure 4: makespan of five algorithms, uniform workload.

Paper setup: 10 cameras; 10/20/30 requests; every camera a candidate
for every request; request cost ~ U[0.36, 5.36] s (the photo() range);
each point averages 10 independent runs; makespan = scheduling time +
service time.

Paper findings the shape check asserts:
* RANDOM is much worse than the other four;
* the proposed LERFA+SRFE and SRFAE beat LS and SA by ~20-40%;
* the proposed algorithms scale sub-linearly in n, LS/SA near-linearly.
"""

import pytest

from repro.scheduling import total_makespan, uniform_camera_workload

from _common import ALGORITHM_ORDER, format_table, record, scheduler_factories

RUNS = 10
N_DEVICES = 10
REQUEST_COUNTS = (10, 20, 30)

#: Paper-reported makespans at n=20 (Section 6.3 text; RANDOM from the
#: Figure 5 breakdown: 0.0 + 14.95).
PAPER_N20 = {"LERFA+SRFE": 5.73, "SRFAE": 5.18, "LS": 8.21, "SA": 7.29,
             "RANDOM": 14.95}


def run_experiment():
    factories = scheduler_factories()
    makespans = {name: {} for name in ALGORITHM_ORDER}
    for n_requests in REQUEST_COUNTS:
        problems = [uniform_camera_workload(n_requests, N_DEVICES, seed=seed)
                    for seed in range(RUNS)]
        for name in ALGORITHM_ORDER:
            total = 0.0
            for seed, problem in enumerate(problems):
                schedule = factories[name](seed).schedule(problem)
                total += total_makespan(problem, schedule)
            makespans[name][n_requests] = total / RUNS
    return makespans


@pytest.fixture(scope="module")
def makespans():
    return run_experiment()


def test_figure4_reproduction(makespans, benchmark):
    rows = []
    for name in ALGORITHM_ORDER:
        row = [name]
        row.extend(makespans[name][n] for n in REQUEST_COUNTS)
        row.append(PAPER_N20[name])
        rows.append(row)
    table = format_table(
        ["algorithm", "n=10 (s)", "n=20 (s)", "n=30 (s)",
         "paper n=20 (s)"], rows)
    record("fig4_uniform",
           "Figure 4: makespan vs #requests, uniform workload "
           f"(10 cameras, avg of {RUNS} runs)", table)

    # One representative scheduling call for pytest-benchmark stats.
    problem = uniform_camera_workload(20, N_DEVICES, seed=0)
    scheduler = scheduler_factories()["SRFAE"](0)
    benchmark.pedantic(lambda: scheduler.schedule(problem),
                       rounds=3, iterations=1)


def test_random_is_worst(makespans):
    for n in REQUEST_COUNTS:
        for name in ("LERFA+SRFE", "SRFAE", "LS"):
            assert makespans["RANDOM"][n] > makespans[name][n]


def test_proposed_beat_ls_by_paper_margin(makespans):
    """Paper: proposed algorithms outperform LS and SA by ~20-40%."""
    for n in REQUEST_COUNTS:
        for proposed in ("LERFA+SRFE", "SRFAE"):
            improvement = 1 - makespans[proposed][n] / makespans["LS"][n]
            assert improvement > 0.10, (
                f"{proposed} improved on LS by only "
                f"{improvement:.0%} at n={n}"
            )


def test_proposed_scale_sublinearly(makespans):
    """Tripling n (10 -> 30) should less-than-triple proposed makespans
    while LS grows near-linearly (paper's scalability observation)."""
    for proposed in ("LERFA+SRFE", "SRFAE"):
        growth = makespans[proposed][30] / makespans[proposed][10]
        assert growth < 3.0
    ls_growth = makespans["LS"][30] / makespans["LS"][10]
    srfae_growth = makespans["SRFAE"][30] / makespans["SRFAE"][10]
    assert srfae_growth < ls_growth + 0.5
