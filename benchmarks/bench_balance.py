"""E8 (extension) — workload balance and device utilization.

Not a paper figure, but the paper's stated *objective*: "our goal is to
balance the action workload on all available devices and improve device
utilization" (Section 5.1). This bench quantifies how well each
algorithm meets that goal on the Figure 4 workload: the coefficient of
variation of per-device completion times (0 = perfectly balanced) and
the mean device utilization.
"""

import pytest

from repro.scheduling import (
    device_utilization,
    uniform_camera_workload,
    workload_balance,
)

from _common import ALGORITHM_ORDER, format_table, record, scheduler_factories

RUNS = 10
N_REQUESTS = 20
N_DEVICES = 10


def run_experiment():
    factories = scheduler_factories()
    results = {}
    problems = [uniform_camera_workload(N_REQUESTS, N_DEVICES, seed=seed)
                for seed in range(RUNS)]
    for name in ALGORITHM_ORDER:
        balance = utilization = 0.0
        for seed, problem in enumerate(problems):
            schedule = factories[name](seed).schedule(problem)
            balance += workload_balance(problem, schedule)
            per_device = device_utilization(problem, schedule)
            utilization += sum(per_device.values()) / len(per_device)
        results[name] = (balance / RUNS, utilization / RUNS)
    return results


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_balance_reproduction(results, benchmark):
    rows = [[name, results[name][0], f"{results[name][1]:.0%}"]
            for name in ALGORITHM_ORDER]
    table = format_table(
        ["algorithm", "imbalance (CV, lower=better)", "mean utilization"],
        rows)
    record("balance",
           "E8: workload balance and utilization on the Figure 4 "
           f"workload (n={N_REQUESTS}, m={N_DEVICES}, avg of {RUNS})",
           table)
    problem = uniform_camera_workload(N_REQUESTS, N_DEVICES, seed=0)
    factory = scheduler_factories()["SRFAE"]
    benchmark.pedantic(
        lambda: workload_balance(problem, factory(0).schedule(problem)),
        rounds=3, iterations=1)


def test_proposed_balance_better_than_random(results):
    for name in ("LERFA+SRFE", "SRFAE"):
        assert results[name][0] < results["RANDOM"][0]


def test_proposed_utilization_higher_than_random(results):
    for name in ("LERFA+SRFE", "SRFAE"):
        assert results[name][1] > results["RANDOM"][1]
