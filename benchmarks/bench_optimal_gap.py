"""E6 — Sections 5.2/6.3: heuristics vs the exact optimum.

The paper argues the optimal MIP "is too computationally expensive to
be feasible ... even if the given input size is small" (an n=4, m=8
instance took ~1.5 h in [2]) while its heuristics "achieved nearly
optimal schedules (the differences to the optimal schedule is less
than 1 second) with a negligible scheduling time".

We solve small instances exactly (exhaustive assignment enumeration
with optimal per-device sequencing) and report (a) the heuristics'
makespan gap to optimal and (b) how the exact solver's runtime explodes
with instance size while the heuristics stay flat.
"""

import pytest

from repro.scheduling import (
    service_makespan,
    optimal_schedule,
    uniform_camera_workload,
)

from _common import format_table, record, scheduler_factories

RUNS = 6
GAP_SIZES = [(4, 2), (6, 3), (8, 4)]
SCALING_SIZES = [(3, 2), (5, 3), (7, 3), (8, 4)]
HEURISTICS = ("LERFA+SRFE", "SRFAE", "LS")


def run_gap_experiment():
    factories = scheduler_factories()
    gaps = {name: {} for name in HEURISTICS}
    for n, m in GAP_SIZES:
        per_algorithm = {name: 0.0 for name in HEURISTICS}
        for seed in range(RUNS):
            problem = uniform_camera_workload(n, m, seed=seed)
            optimal = optimal_schedule(problem)
            for name in HEURISTICS:
                schedule = factories[name](seed).schedule(problem)
                per_algorithm[name] += (
                    service_makespan(problem, schedule) - optimal.makespan)
        for name in HEURISTICS:
            gaps[name][(n, m)] = per_algorithm[name] / RUNS
    return gaps


def run_scaling_experiment():
    factories = scheduler_factories()
    rows = []
    for n, m in SCALING_SIZES:
        problem = uniform_camera_workload(n, m, seed=1)
        optimal = optimal_schedule(problem)
        heuristic = factories["SRFAE"](1).schedule(problem)
        rows.append((n, m, optimal.solve_seconds,
                     heuristic.scheduling_seconds,
                     optimal.assignments_explored))
    return rows


@pytest.fixture(scope="module")
def gaps():
    return run_gap_experiment()


@pytest.fixture(scope="module")
def scaling():
    return run_scaling_experiment()


def test_optimal_gap_reproduction(gaps, scaling, benchmark):
    gap_rows = []
    for name in HEURISTICS:
        row = [name]
        row.extend(gaps[name][size] for size in GAP_SIZES)
        gap_rows.append(row)
    gap_table = format_table(
        ["algorithm"] + [f"gap at {size} (s)" for size in GAP_SIZES],
        gap_rows)
    scale_rows = [[f"n={n}, m={m}", exact, heuristic, explored]
                  for n, m, exact, heuristic, explored in scaling]
    scale_table = format_table(
        ["instance", "exact solve (s)", "SRFAE solve (s)",
         "assignments explored"], scale_rows)
    record("optimal_gap",
           "Sections 5.2/6.3: heuristic gap to optimal (avg of "
           f"{RUNS} runs) and exact-solver scaling",
           gap_table + "\n\n" + scale_table)

    problem = uniform_camera_workload(5, 3, seed=0)
    benchmark.pedantic(lambda: optimal_schedule(problem),
                       rounds=3, iterations=1)


def test_proposed_heuristics_near_optimal(gaps):
    """Paper: proposed algorithms within ~1 s of the optimal schedule.

    SRFAE (which re-estimates costs after every status change) meets
    the ~1 s bound; LERFA+SRFE assigns from initial statuses only, so
    its gap is allowed slightly more headroom.
    """
    for size in GAP_SIZES:
        assert gaps["SRFAE"][size] < 1.0
        assert gaps["LERFA+SRFE"][size] < 2.5


def test_gaps_are_nonnegative(gaps):
    for name in HEURISTICS:
        for size in GAP_SIZES:
            assert gaps[name][size] >= -1e-9


def test_exact_solver_cost_explodes(scaling):
    """The exact solver's runtime grows combinatorially while the
    heuristic's stays flat — the paper's infeasibility argument."""
    smallest = scaling[0]
    largest = scaling[-1]
    assert largest[2] > 20 * smallest[2]  # exact solve blows up
    assert largest[3] < 0.1               # heuristic stays negligible
