"""E5 — Section 6.3 in-text claim: only n/m matters under uniformity.

"The results show that with a uniformly distributed workload, the
performance of the four scheduling algorithms (except for RANDOM) was
only affected by the average number of requests scheduled on each
device (i.e., #requests / #devices)."

We sweep (n, m) pairs at fixed ratios and check that each non-random
algorithm's *service* makespan stays roughly constant along a ratio
(SA is compared on service time; its scheduling time obviously grows
with n).
"""

import pytest

from repro.scheduling import SAParameters, service_makespan, uniform_camera_workload

from _common import format_table, record, scheduler_factories

RUNS = 8
#: (ratio, [(n, m), ...]) sweeps.
SWEEPS = (
    (2.0, [(8, 4), (16, 8), (24, 12)]),
    (3.0, [(9, 3), (18, 6), (27, 9)]),
)
#: Lighter SA so the sweep stays fast; service quality is unaffected.
FAST_SA = SAParameters(moves_per_temperature_per_request=15, cooling=0.9)

ALGORITHMS = ("LERFA+SRFE", "SRFAE", "LS", "SA")


def run_experiment():
    factories = scheduler_factories(sa_parameters=FAST_SA)
    results = {}
    for ratio, sizes in SWEEPS:
        for n, m in sizes:
            for name in ALGORITHMS:
                total = 0.0
                for seed in range(RUNS):
                    problem = uniform_camera_workload(n, m, seed=seed)
                    schedule = factories[name](seed).schedule(problem)
                    total += service_makespan(problem, schedule)
                results[(name, ratio, n, m)] = total / RUNS
    return results


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_ratio_invariance_reproduction(results, benchmark):
    rows = []
    for ratio, sizes in SWEEPS:
        for name in ALGORITHMS:
            row = [name, ratio]
            row.extend(results[(name, ratio, n, m)] for n, m in sizes)
            rows.append(row)
    headers = ["algorithm", "n/m"] + [
        f"({n},{m})" for _, sizes in SWEEPS for n, m in sizes][:3]
    table = format_table(headers, rows)
    record("ratio_invariance",
           "Section 6.3: service makespan at fixed #requests/#devices "
           f"(avg of {RUNS} runs)", table)

    problem = uniform_camera_workload(16, 8, seed=0)
    scheduler = scheduler_factories()["LERFA+SRFE"](0)
    benchmark.pedantic(lambda: scheduler.schedule(problem),
                       rounds=3, iterations=1)


def test_makespan_constant_along_ratio(results):
    """Along one ratio, makespans vary far less than across ratios."""
    for name in ALGORITHMS:
        for ratio, sizes in SWEEPS:
            values = [results[(name, ratio, n, m)] for n, m in sizes]
            spread = max(values) - min(values)
            assert spread < 0.45 * min(values), (
                f"{name} at ratio {ratio}: {values}"
            )


def test_higher_ratio_means_higher_makespan(results):
    """Across ratios the load per device, and thus makespan, grows."""
    for name in ALGORITHMS:
        low = min(results[(name, 2.0, n, m)] for n, m in SWEEPS[0][1])
        high = max(results[(name, 3.0, n, m)] for n, m in SWEEPS[1][1])
        assert high > low
