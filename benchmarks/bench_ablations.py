"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these quantify why the paper's mechanisms are built
the way they are, by turning each one off:

* A1 sequence-dependent cost chaining in the schedulers (Section 2.3);
* A2 cost-model estimation accuracy (Section 2.3);
* A3 the balanced BST inside SRFAE (Algorithm 2, Figure 3);
* A4 shared-operator group scheduling (Section 2.3's operator sharing);
* A5 probing before device selection (Section 4).
"""

from typing import Any, Tuple

import pytest

from repro.scheduling import (
    Problem,
    SchedRequest,
    SchedulingCostModel,
    SrfaeScheduler,
    service_makespan,
    uniform_camera_workload,
)

from _common import format_table, record

RUNS = 10


class _UnchainedEstimates(SchedulingCostModel):
    """Estimates always taken from the device's *initial* status.

    Actual costs stay sequence-dependent — this models a scheduler that
    ignores the paper's physical-status-change effect.
    """

    def __init__(self, inner: SchedulingCostModel) -> None:
        self._inner = inner

    def initial_status(self, device_id: str) -> Any:
        return self._inner.initial_status(device_id)

    def estimate(self, request: SchedRequest, device_id: str,
                 status: Any) -> Tuple[float, Any]:
        seconds, _ = self._inner.estimate(
            request, device_id, self._inner.initial_status(device_id))
        return seconds, status  # no propagation

    def actual(self, request: SchedRequest, device_id: str,
               status: Any) -> Tuple[float, Any]:
        return self._inner.actual(request, device_id, status)


# ----------------------------------------------------------------------
# A1: status chaining on/off
# ----------------------------------------------------------------------

def run_chaining_ablation():
    chained = unchained = 0.0
    for seed in range(RUNS):
        problem = uniform_camera_workload(20, 10, seed=seed)
        schedule = SrfaeScheduler(seed).schedule(problem)
        chained += service_makespan(problem, schedule)

        blind = Problem(requests=problem.requests,
                        device_ids=problem.device_ids,
                        cost_model=_UnchainedEstimates(problem.cost_model))
        blind_schedule = SrfaeScheduler(seed).schedule(blind)
        unchained += service_makespan(blind, blind_schedule)
    return chained / RUNS, unchained / RUNS


@pytest.fixture(scope="module")
def chaining():
    return run_chaining_ablation()


def test_a1_chaining_ablation(chaining, benchmark):
    chained, unchained = chaining
    table = format_table(
        ["estimator", "actual makespan (s)"],
        [["status-chained (paper)", chained],
         ["initial-status only", unchained]])
    record("ablation_chaining",
           "A1: SRFAE with vs without sequence-dependent cost chaining",
           table)
    problem = uniform_camera_workload(20, 10, seed=0)
    benchmark.pedantic(lambda: SrfaeScheduler(0).schedule(problem),
                       rounds=3, iterations=1)


def test_a1_chaining_helps(chaining):
    chained, unchained = chaining
    assert chained < unchained


# ----------------------------------------------------------------------
# A2: estimation noise
# ----------------------------------------------------------------------

NOISE_LEVELS = (0.0, 0.2, 0.5, 1.0)


def run_noise_ablation():
    results = {}
    for noise in NOISE_LEVELS:
        total = 0.0
        for seed in range(RUNS):
            problem = uniform_camera_workload(20, 10, seed=seed,
                                              estimate_noise=noise)
            schedule = SrfaeScheduler(seed).schedule(problem)
            total += service_makespan(problem, schedule)  # actual costs
        results[noise] = total / RUNS
    return results


@pytest.fixture(scope="module")
def noise_results():
    return run_noise_ablation()


def test_a2_noise_ablation(noise_results, benchmark):
    table = format_table(
        ["estimate noise (rel.)", "actual makespan (s)"],
        [[f"±{noise:.0%}", noise_results[noise]]
         for noise in NOISE_LEVELS])
    record("ablation_noise",
           "A2: SRFAE makespan as cost estimates degrade",
           table)
    problem = uniform_camera_workload(20, 10, seed=0, estimate_noise=0.5)
    benchmark.pedantic(lambda: SrfaeScheduler(0).schedule(problem),
                       rounds=3, iterations=1)


def test_a2_accurate_estimates_beat_very_noisy(noise_results):
    assert noise_results[0.0] < noise_results[1.0]


# ----------------------------------------------------------------------
# A3: SRFAE priority structures — lazy heap vs AVL vs linear scan
# ----------------------------------------------------------------------

SIZES = (20, 60, 140)
STRUCTURES = ("heap", "avl", "scan")


def run_structure_ablation():
    rows = []
    for n in SIZES:
        problem = uniform_camera_workload(n, 10, seed=1)
        schedules = {
            structure: SrfaeScheduler(1, structure=structure,
                                      cost_cache=False).schedule(problem)
            for structure in STRUCTURES}
        reference = schedules["heap"].assignments
        for structure in STRUCTURES:  # same algorithm, same output
            assert schedules[structure].assignments == reference
        rows.append((n,) + tuple(schedules[s].scheduling_seconds
                                 for s in STRUCTURES))
    return rows


@pytest.fixture(scope="module")
def structure_rows():
    return run_structure_ablation()


def test_a3_structure_ablation(structure_rows, benchmark):
    table = format_table(
        ["n requests", "lazy heap (s)", "AVL solve (s)",
         "linear-scan solve (s)"],
        [[n, f"{heap:.4f}", f"{avl:.4f}", f"{naive:.4f}"]
         for n, heap, avl, naive in structure_rows])
    record("ablation_avl",
           "A3: SRFAE scheduling time across priority structures\n"
           "(All three produce identical schedules. The paper's Java "
           "prototype needed the balanced BST; in CPython the AVL loses "
           "because rebalancing runs in Python while the flat scan and "
           "the lazy heap run in C — the heap, the default, adds "
           "log-time pops and periodic compaction on top.)",
           table)
    problem = uniform_camera_workload(60, 10, seed=1)
    benchmark.pedantic(
        lambda: SrfaeScheduler(1, use_avl=True).schedule(problem),
        rounds=3, iterations=1)


def test_a3_identical_schedules(structure_rows):
    # Asserted inside run_structure_ablation; rows exist means it held.
    assert len(structure_rows) == len(SIZES)


# ----------------------------------------------------------------------
# A4: group scheduling vs one-at-a-time assignment
# ----------------------------------------------------------------------

def _myopic_makespan(problem) -> float:
    """Each request assigned on arrival to the least-completion device
    (what per-query action operators without sharing would do)."""
    statuses = problem.initial_statuses()
    completions = {device_id: 0.0 for device_id in problem.device_ids}
    for request in problem.requests:
        best_device = min(
            request.candidates,
            key=lambda d: completions[d] + problem.cost_model.estimate(
                request, d, statuses[d])[0])
        seconds, post = problem.cost_model.actual(
            request, best_device, statuses[best_device])
        completions[best_device] += seconds
        statuses[best_device] = post
    return max(completions.values())


def run_sharing_ablation():
    grouped = myopic = 0.0
    for seed in range(RUNS):
        problem = uniform_camera_workload(20, 10, seed=seed)
        schedule = SrfaeScheduler(seed).schedule(problem)
        grouped += service_makespan(problem, schedule)
        myopic += _myopic_makespan(problem)
    return grouped / RUNS, myopic / RUNS


@pytest.fixture(scope="module")
def sharing():
    return run_sharing_ablation()


def test_a4_sharing_ablation(sharing, benchmark):
    grouped, myopic = sharing
    table = format_table(
        ["dispatch mode", "makespan (s)"],
        [["shared operator, batch-scheduled (paper)", grouped],
         ["per-query operators, one-at-a-time", myopic]])
    record("ablation_sharing",
           "A4: group scheduling via the shared action operator",
           table)
    problem = uniform_camera_workload(20, 10, seed=0)
    benchmark.pedantic(lambda: _myopic_makespan(problem),
                       rounds=3, iterations=1)


def test_a4_group_scheduling_helps(sharing):
    grouped, myopic = sharing
    assert grouped < myopic


# ----------------------------------------------------------------------
# A5: probing on/off with partially dead fleet (engine level)
# ----------------------------------------------------------------------

def run_probing_ablation(probing: bool) -> float:
    from repro import (AortaEngine, EngineConfig, Environment,
                       PanTiltZoomCamera, Point, SensorMote,
                       SensorStimulus)
    from repro.actions.request import RequestState

    env = Environment()
    engine = AortaEngine(env, config=EngineConfig(probing=probing,
                                                  locking=True))
    # Geometry chosen so the *dead* cameras are the cheapest candidates
    # (close to the motes), while the live ones are far away — without
    # probing, the optimizer confidently assigns to corpses.
    for i, (x, alive) in enumerate([(0.0, True), (30.0, False),
                                    (60.0, True), (90.0, False)]):
        camera = PanTiltZoomCamera(env, f"cam{i + 1}", Point(x, 0),
                                   view_half_angle=180.0,
                                   view_range=120.0)
        engine.add_device(camera)
        if not alive:
            camera.go_offline()
    for name, x in (("mote1", 33.0), ("mote2", 87.0)):
        mote = SensorMote(env, name, Point(x, 2.0), noise_amplitude=0.0)
        engine.add_device(mote)
        for k in range(5):
            mote.inject(SensorStimulus("accel_x", start=20.0 * k + 1.0,
                                       duration=3.0, magnitude=900.0))
    engine.execute('''CREATE AQ watch AS
        SELECT photo(c.ip, s.loc, "photos")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    engine.start()
    engine.run(until=120.0)
    requests = engine.completed_requests
    assert requests
    failed = sum(1 for r in requests if r.state is RequestState.FAILED)
    return failed / len(requests)


@pytest.fixture(scope="module")
def probing_rates():
    return {"with": run_probing_ablation(True),
            "without": run_probing_ablation(False)}


def test_a5_probing_ablation(probing_rates, benchmark):
    table = format_table(
        ["configuration", "request failure rate"],
        [["probing on (paper)", f"{probing_rates['with']:.0%}"],
         ["probing off", f"{probing_rates['without']:.0%}"]])
    record("ablation_probing",
           "A5: probing before device selection, half the fleet dead",
           table)
    benchmark.pedantic(lambda: run_probing_ablation(True),
                       rounds=1, iterations=1)


def test_a5_probing_prevents_dead_assignments(probing_rates):
    assert probing_rates["with"] < 0.05
    assert probing_rates["without"] > probing_rates["with"]


# ----------------------------------------------------------------------
# A6: what probing costs when nothing is wrong
# ----------------------------------------------------------------------

def run_probing_latency(probing: bool) -> float:
    """Mean event-to-completion latency with a fully healthy fleet."""
    from repro import (AortaEngine, EngineConfig, Environment,
                       PanTiltZoomCamera, Point, SensorMote,
                       SensorStimulus)

    env = Environment()
    engine = AortaEngine(env, config=EngineConfig(probing=probing))
    for i in range(4):
        engine.add_device(PanTiltZoomCamera(
            env, f"cam{i + 1}", Point(8.0 * i, 0),
            view_half_angle=180.0, view_range=60.0))
    mote = SensorMote(env, "mote1", Point(10, 3), noise_amplitude=0.0)
    engine.add_device(mote)
    engine.execute('''CREATE AQ watch AS
        SELECT photo(c.ip, s.loc, "photos")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    for k in range(8):
        mote.inject(SensorStimulus("accel_x", start=15.0 * k + 1.0,
                                   duration=3.0, magnitude=900.0))
    engine.start()
    engine.run(until=140.0)
    latencies = [r.completion_seconds for r in engine.completed_requests
                 if r.completion_seconds is not None]
    assert latencies
    return sum(latencies) / len(latencies)


@pytest.fixture(scope="module")
def probing_latency():
    return {"with": run_probing_latency(True),
            "without": run_probing_latency(False)}


def test_a6_probing_overhead(probing_latency, benchmark):
    overhead = probing_latency["with"] - probing_latency["without"]
    table = format_table(
        ["configuration", "mean event->completion latency (s)"],
        [["probing on", probing_latency["with"]],
         ["probing off", probing_latency["without"]],
         ["probe overhead", overhead]])
    record("ablation_probe_overhead",
           "A6: latency cost of probing with a healthy fleet "
           "(the insurance premium for A5's protection)", table)
    benchmark.pedantic(lambda: run_probing_latency(True),
                       rounds=1, iterations=1)


def test_a6_probe_overhead_is_small(probing_latency):
    overhead = probing_latency["with"] - probing_latency["without"]
    # Probing costs round trips, not seconds: well under 10% of the
    # multi-second photo latency.
    assert 0 <= overhead < 0.1 * probing_latency["with"]
