"""E9 (extension) — concurrent heterogeneous action workloads.

The paper's future work calls for "scheduling techniques for a large
number of heterogeneous devices". This bench drives the *engine* (not
just the scheduler) with three action types on three device types at
once — photo() on cameras, blink() on motes, sendphoto() on phones —
and verifies the per-action shared operators dispatch independently and
correctly under load.
"""

import pytest

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    MobilePhone,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)
from repro.actions.builtins import sendphoto_profile, sendphoto_resolver
from repro.actions.request import RequestState

from _common import format_table, record

N_CAMERAS = 4
N_MOTES = 12
N_PHONES = 2
MINUTES = 5


def build_engine(seed=0):
    env = Environment()
    engine = AortaEngine(env, config=EngineConfig(scheduler="SRFAE"),
                         seed=seed)
    for i in range(N_CAMERAS):
        engine.add_device(PanTiltZoomCamera(
            env, f"cam{i + 1}", Point(12.0 * i, 0),
            view_half_angle=180.0, view_range=60.0))
    for i in range(N_MOTES):
        engine.add_device(SensorMote(
            env, f"mote{i + 1}", Point(3.0 * i, 4.0), noise_amplitude=0.0))
    for i in range(N_PHONES):
        engine.add_device(MobilePhone(
            env, f"phone{i + 1}", Point(0, 0), number=f"+8529000000{i}"))

    def sendphoto_impl(device, args):
        yield from device.execute("connect")
        outcome = yield from device.execute(
            "receive_mms", sender="aorta", body="alert",
            attachment=args["photo_pathname"], size_kb=80.0)
        return outcome.detail

    engine.install_action_code("lib/users/sendphoto.dll", sendphoto_impl)
    engine.install_action_profile(
        "profiles/users/sendphoto.xml", sendphoto_profile(),
        sendphoto_resolver, device_parameters={"phone_no": "number"})
    engine.execute('''CREATE ACTION sendphoto(String phone_no,
                                              String photo_pathname)
        AS "lib/users/sendphoto.dll" PROFILE "profiles/users/sendphoto.xml"''')

    engine.execute('''CREATE AQ snap AS
        SELECT photo(c.ip, s.loc, "photos")
        FROM sensor s, camera c
        WHERE s.accel_x > 500 AND coverage(c.id, s.loc)''')
    engine.execute('''CREATE AQ flash AS
        SELECT blink(t.id)
        FROM sensor s, sensor t
        WHERE s.accel_x > 500 AND distance(t.loc, s.loc) < 6
          AND distance(t.loc, s.loc) > 0''')
    engine.execute('''CREATE AQ notify AS
        SELECT sendphoto(p.number, "photos/alert.jpg")
        FROM sensor s, phone p
        WHERE s.accel_x > 800''')
    return engine


def run_experiment():
    import random
    engine = build_engine()
    rng = random.Random(4)
    for minute in range(MINUTES):
        for mote_index in rng.sample(range(1, N_MOTES + 1), 4):
            mote = engine.comm.registry.get(f"mote{mote_index}")
            mote.inject(SensorStimulus(
                "accel_x", start=60.0 * minute + rng.uniform(1, 50),
                duration=3.0, magnitude=rng.choice([600, 900, 1200])))
    engine.start()
    engine.run(until=60.0 * MINUTES + 30.0)

    per_action = {}
    for request in engine.completed_requests:
        stats = per_action.setdefault(
            request.action_name, {"serviced": 0, "failed": 0})
        key = ("serviced" if request.state is RequestState.SERVICED
               else "failed")
        stats[key] += 1
    return engine, per_action


@pytest.fixture(scope="module")
def experiment():
    return run_experiment()


def test_heterogeneous_reproduction(experiment, benchmark):
    engine, per_action = experiment
    rows = [[name, stats["serviced"], stats["failed"]]
            for name, stats in sorted(per_action.items())]
    table = format_table(["action", "serviced", "failed"], rows)
    record("heterogeneous",
           f"E9: three action types on three device types, "
           f"{MINUTES} virtual minutes", table)
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)


def test_all_three_action_types_ran(experiment):
    _, per_action = experiment
    assert set(per_action) == {"photo", "blink", "sendphoto"}
    for stats in per_action.values():
        assert stats["serviced"] > 0


def test_actions_land_on_matching_device_types(experiment):
    engine, _ = experiment
    expected = {"photo": "camera", "blink": "sensor",
                "sendphoto": "phone"}
    for request in engine.completed_requests:
        if request.assigned_device is None:
            continue
        device = engine.comm.registry.get(request.assigned_device)
        assert device.device_type == expected[request.action_name]


def test_failure_rate_low(experiment):
    _, per_action = experiment
    total = sum(s["serviced"] + s["failed"] for s in per_action.values())
    failed = sum(s["failed"] for s in per_action.values())
    assert failed / total < 0.1
