"""E4 — Figure 6: makespan under skewed workloads.

Paper setup: 10 cameras, 20 requests; half of the requests may run on
any camera, the other half only on a random subset whose size over the
camera count is the *skewness* (0.2, 0.3, 0.4); makespan includes
scheduling time.

Paper findings the shape check asserts:
* SA performs worst under skew, because its long scheduling time
  "completely dominated the service time" (the paper's Figure 6 shows
  SA's makespan an order of magnitude above the greedy algorithms);
* for the other four, makespan *decreases* as skewness grows — more
  candidates per restricted request spread the load better;
* the proposed LERFA+SRFE and SRFAE stay best overall.
"""

import pytest

from repro.scheduling import total_makespan, skewed_camera_workload

from _common import ALGORITHM_ORDER, format_table, record, scheduler_factories

#: Run counts: the greedy algorithms are cheap enough for 20 runs; SA
#: costs seconds per run, so it averages over fewer (still > the
#: paper's 10-run averages in total work).
RUNS = 20
SA_RUNS = 10
N_REQUESTS = 20
N_DEVICES = 10
SKEWNESS_LEVELS = (0.2, 0.3, 0.4)


def run_experiment():
    factories = scheduler_factories()
    makespans = {name: {} for name in ALGORITHM_ORDER}
    for skewness in SKEWNESS_LEVELS:
        problems = [
            skewed_camera_workload(N_REQUESTS, N_DEVICES, skewness,
                                   seed=seed)
            for seed in range(RUNS)
        ]
        for name in ALGORITHM_ORDER:
            runs = SA_RUNS if name == "SA" else RUNS
            total = 0.0
            for seed, problem in enumerate(problems[:runs]):
                schedule = factories[name](seed).schedule(problem)
                total += total_makespan(problem, schedule)
            makespans[name][skewness] = total / runs
    return makespans


@pytest.fixture(scope="module")
def makespans():
    return run_experiment()


def test_figure6_reproduction(makespans, benchmark):
    rows = []
    for name in ALGORITHM_ORDER:
        row = [name]
        row.extend(makespans[name][s] for s in SKEWNESS_LEVELS)
        rows.append(row)
    table = format_table(
        ["algorithm"] + [f"skew={s} (s)" for s in SKEWNESS_LEVELS], rows)
    record("fig6_skewed",
           f"Figure 6: makespan vs skewness ({N_REQUESTS} requests, "
           f"{N_DEVICES} cameras, avg of {RUNS} runs)", table)

    problem = skewed_camera_workload(N_REQUESTS, N_DEVICES, 0.3, seed=0)
    scheduler = scheduler_factories()["SRFAE"](0)
    benchmark.pedantic(lambda: scheduler.schedule(problem),
                       rounds=3, iterations=1)


def test_sa_worst_under_skew(makespans):
    """SA's scheduling time dominates: worst total at every skewness."""
    for skewness in SKEWNESS_LEVELS:
        for name in ("LERFA+SRFE", "SRFAE", "LS"):
            assert makespans["SA"][skewness] > makespans[name][skewness]


def test_makespan_decreases_with_skewness(makespans):
    """More candidates for the restricted half spread load better
    (paper: "the makespans decreased when the skewness increased")."""
    for name in ("LERFA+SRFE", "SRFAE", "LS", "RANDOM"):
        assert makespans[name][0.4] < makespans[name][0.2]


def test_proposed_best_of_greedy(makespans):
    for skewness in SKEWNESS_LEVELS:
        best_proposed = min(makespans["LERFA+SRFE"][skewness],
                            makespans["SRFAE"][skewness])
        assert best_proposed <= makespans["LS"][skewness]
        assert best_proposed <= makespans["RANDOM"][skewness]
