"""Overload-control benchmark: storms, bounded queues, priority.

Four gates on the overload plane (``EngineConfig(overload=True)``):

* **off-identical** — the snapshot scenario run with the overload knob
  absent, and again with it explicitly off, must produce byte-identical
  normalized dumps, both equal to the checked-in ``snapshot_obs``
  golden. The default-off path is inert.
* **bounded** — under a request storm at roughly 3x fleet capacity, no
  operator's pending queue ever exceeds the configured limit.
* **priority** — the overloaded engine still services at least 95% of
  its high-priority (tier 3) requests inside their deadlines, while the
  plain engine — same fleet, same storm — degrades below that bar:
  admission, bounded queues and shedding buy graceful degradation, not
  throughput.
* **deterministic** — two overload-on storm runs dump identically
  (traces, statistics, completed set).

Writes a machine-readable ``BENCH_overload.json`` at the repo root and
exits non-zero when any gate fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_overload.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.dirname(__file__))

from _common import format_table, record, write_result  # noqa: E402

from repro import (  # noqa: E402
    AortaEngine,
    EngineConfig,
    Environment,
    PanTiltZoomCamera,
    Point,
)
from repro.actions.request import ActionRequest  # noqa: E402
from repro.devices.failures import FailureInjector  # noqa: E402
from repro.overload import OverloadPolicy, TierRate  # noqa: E402

from tests.obs.golden import diff_dumps, dump_engine, load_golden  # noqa: E402
from tests.obs.scenarios import snapshot_scenario  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_overload.json")

#: The paper's E10 scale: n requests stormed over m devices. The smoke
#: size keeps the same n/m ratio so one deadline set fits both.
GATE_SIZE = (400, 100)
SMOKE_SIZE = (48, 12)

#: Service-time ballpark of one photo() used to size the storm at
#: roughly 3x fleet capacity (empirically ~0.7 s per request).
SERVICE_ESTIMATE_S = 0.7
OVERLOAD_FACTOR = 3.0

#: Required service fraction of tier-3 requests inside the measurement
#: horizon, overload on.
HIGH_PRIORITY_TARGET = 0.95

#: Deadlines by tier (seconds after arrival). Tier 3 is pure priority
#: (no deadline, never shed); tiers 1-2 carry deadlines the shedder
#: enforces under pressure.
DEADLINES = {3: None, 2: 1.5, 1: 3.0}

#: Seconds of run after the storm ends. Deliberately tight: the fleet
#: cannot absorb a 3x backlog in this window, so what gets serviced is
#: what the engine chose to do first — the measurement that separates
#: priority-aware shedding from FIFO.
DRAIN_S = 3.0


def storm_policy(n: int) -> OverloadPolicy:
    """Queue bound and watermarks scaled to the storm size.

    The limit leaves headroom above the storm's tier-3 population
    (n/4): bounded-queue eviction always finds a lower tier to drop, so
    backpressure never turns on the protected tier itself.
    """
    limit = max(16, (3 * n) // 8)
    return OverloadPolicy(
        tier_rates={1: TierRate(rate=2.0, burst=4.0)},
        capacity_horizon=10.0,
        utilization_cap=0.9,
        queue_limit=limit,
        shed_interval=0.5,
        shed_high_watermark=max(2, (3 * limit) // 4),
        shed_low_watermark=max(1, limit // 4),
    )


def run_storm(n: int, m: int, *, overload: bool,
              observability=None) -> AortaEngine:
    """One n-request storm over m cameras; returns the finished engine."""
    env = Environment()
    kwargs = {}
    if observability is not None:
        kwargs["observability"] = observability
    if overload:
        kwargs.update(overload=True, overload_policy=storm_policy(n))
    engine = AortaEngine(env, config=EngineConfig(**kwargs), seed=0)
    for i in range(m):
        engine.add_device(PanTiltZoomCamera(
            env, f"cam{i + 1}", Point(20.0 * i, 0.0),
            facing=0.0, view_half_angle=170.0, view_range=1000.0))
    operator = engine.dispatcher.operator_for(engine.actions.get("photo"))

    def make_request(index: int, now: float) -> ActionRequest:
        if index % 4 == 0:
            tier = 3
        elif index % 4 == 1:
            tier = 2
        else:
            tier = 1
        # Camera assignment decoupled from the tier: within each group
        # of four consecutive indices (one full tier cycle), the four
        # requests land on cameras offset by 0/7/14/21 from a rotating
        # base. Any assignment that is a plain function of index mod m
        # risks pinning each camera to a single tier (whenever the tier
        # cycle divides the camera count), which would make priority
        # ordering vacuous by construction.
        start = (index // 4 + 7 * (index % 4)) % m
        candidates = tuple(
            f"cam{(start + j) % m + 1}" for j in range(4))
        deadline = DEADLINES[tier]
        return ActionRequest(
            action_name="photo",
            arguments={"target": Point(20.0 * start + 1.0, 5.0),
                       "directory": "photos/storm"},
            created_at=now, candidates=candidates,
            request_id=f"storm{index:03d}", priority=tier,
            deadline=None if deadline is None else now + deadline)

    # Storm at ~3x capacity: the fleet can absorb about
    # m / SERVICE_ESTIMATE_S requests per second.
    rate = OVERLOAD_FACTOR * m / SERVICE_ESTIMATE_S
    duration = n / rate
    injector = FailureInjector(env)
    injector.schedule_request_storm(
        lambda request: engine.dispatcher.submit(operator, request),
        make_request, start=1.0, duration=duration, rate=rate)
    engine.start()
    engine.run(until=1.0 + duration + DRAIN_S)
    return engine


def high_priority_served(engine: AortaEngine, n: int) -> dict:
    """Service fraction of the storm's tier-3 requests at the horizon.

    The denominator is every tier-3 request the storm offered.
    Counted from the trace (a request is traced ``request_serviced``
    the moment it completes) because the horizon deliberately cuts the
    final batch mid-flight — under 3x overload the backlog does not
    drain, so what made it through is what the engine prioritized.
    """
    tier3_ids = {f"storm{index:03d}" for index in range(n)
                 if index % 4 == 0}
    served = sum(1 for record in engine.tracer
                 if record.kind == "request_serviced"
                 and record.fields.get("request") in tier3_ids)
    total = len(tier3_ids)
    return {
        "total": total,
        "serviced": served,
        "fraction": served / total if total else 0.0,
    }


def canonical(dump: dict) -> str:
    return json.dumps(dump, sort_keys=True)


def check_off_identical() -> dict:
    """Knob-absent vs knob-off vs the checked-in snapshot golden."""
    unset = canonical(dump_engine(snapshot_scenario(observability=True)))
    off = canonical(dump_engine(snapshot_scenario(observability=True,
                                                  overload=False)))
    golden = load_golden("snapshot_obs")
    golden_differences = diff_dumps(golden, json.loads(off)) \
        if golden is not None else ["golden file missing"]
    return {
        "unset_equals_off": unset == off,
        "matches_golden": not golden_differences,
        "golden_differences": golden_differences[:5],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="smaller storm (60 requests x 12 cameras)")
    args = parser.parse_args(argv)

    n, m = SMOKE_SIZE if args.smoke else GATE_SIZE
    limit = storm_policy(n).queue_limit

    print("checking off-path invariance ...", flush=True)
    off_identical = check_off_identical()

    print(f"running {n}x{m} storm, overload on (run 1) ...", flush=True)
    guarded = run_storm(n, m, overload=True)
    print(f"running {n}x{m} storm, overload on (run 2) ...", flush=True)
    guarded_again = run_storm(n, m, overload=True)
    print(f"running {n}x{m} storm, overload off (baseline) ...",
          flush=True)
    baseline = run_storm(n, m, overload=False)

    stats = guarded.statistics()
    peak_depths = {
        name: op.peak_pending
        for name, op in sorted(guarded.dispatcher._operators.items())}
    bounded = all(depth <= limit for depth in peak_depths.values())

    on_path = high_priority_served(guarded, n)
    off_path = high_priority_served(baseline, n)
    deterministic = canonical(dump_engine(guarded)) \
        == canonical(dump_engine(guarded_again))

    gates = {
        "off_identical": off_identical["unset_equals_off"]
        and off_identical["matches_golden"],
        "bounded_queues": bounded,
        "high_priority_served": on_path["fraction"]
        >= HIGH_PRIORITY_TARGET,
        "baseline_degrades": off_path["fraction"] < HIGH_PRIORITY_TARGET,
        "deterministic": deterministic,
    }

    payload = {
        "benchmark": "bench_overload",
        "smoke": args.smoke,
        "scenario": {
            "storm": f"n={n} photo() requests over m={m} cameras at "
                     f"~{OVERLOAD_FACTOR:.0f}x fleet capacity, tier mix "
                     f"25/25/50 (3/2/1), deadlines {DEADLINES}",
            "policy": {
                "queue_limit": limit,
                "tier1_rate": 2.0,
                "shed_interval": 0.5,
            },
        },
        "off_identical": off_identical,
        "bounded_queues": {
            "limit": limit,
            "peak_pending": peak_depths,
        },
        "high_priority": {
            "target": HIGH_PRIORITY_TARGET,
            "overload_on": on_path,
            "overload_off": off_path,
        },
        "overload_stats": {
            key: value for key, value in stats.items()
            if key.startswith("overload_") or key == "requests_shed"},
        "deterministic": deterministic,
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    verdict = "PASS" if exit_code == 0 else "FAIL"
    table = format_table(
        ("mode", "tier-3 served", "fraction"),
        [("overload on", f"{on_path['serviced']}"
          f"/{on_path['total']}", on_path["fraction"]),
         ("overload off", f"{off_path['serviced']}"
          f"/{off_path['total']}", off_path["fraction"])])
    body = (
        f"off path: unset==off {off_identical['unset_equals_off']}, "
        f"matches snapshot golden {off_identical['matches_golden']}\n"
        f"bounded queues: peak {max(peak_depths.values(), default=0)} "
        f"<= limit {limit}: {bounded}\n"
        f"{table}\n"
        f"shed: {stats.get('requests_shed', 0)}, rejected: "
        f"{stats.get('overload_rejected_requests', 0)}, admitted: "
        f"{stats.get('overload_admitted_requests', 0)}\n"
        f"deterministic: {deterministic}\n"
        f"verdict: {verdict}\n"
        f"JSON: {os.path.relpath(JSON_PATH)}")
    record("overload", "Overload control under a request storm", body)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
