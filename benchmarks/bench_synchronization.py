"""E1 — Section 6.2: effects of device synchronization.

Paper setup: 10 registered photo queries over 2 cameras; query i
photographs mote i's location once per minute. Without synchronization
"more than half of the action requests failed ..., resulted in blurred
photos, or took photos at wrong positions"; with the locking + probing
mechanisms "the percentage of these action failures reduced to nearly
10%" (the residue stemming from the heavy 10-queries-on-2-cameras
workload on unreliable hardware — modelled here as camera link loss).

A failure is: a failed request, a blurred photo, or a photo aimed more
than a degree off its target.
"""

import pytest

from repro import (
    AortaEngine,
    EngineConfig,
    Environment,
    PanTiltZoomCamera,
    Point,
    SensorMote,
    SensorStimulus,
)
from repro.actions.request import RequestState
from repro.devices.camera import Photo
from repro.network import LinkModel

from _common import format_table, record

N_QUERIES = 10
MINUTES = 10

#: Unreliable-hardware model: the camera control link occasionally
#: drops an exchange (real AXIS cameras "suffer from network connection
#: delay and produce blurred photos occasionally", Section 4).
LINKS = {
    "camera": LinkModel(latency_seconds=0.005, jitter_seconds=0.001,
                        loss_rate=0.04),
    "sensor": LinkModel(latency_seconds=0.02, jitter_seconds=0.005,
                        loss_rate=0.02),
    "phone": LinkModel(latency_seconds=0.3, jitter_seconds=0.05,
                       loss_rate=0.01),
}

PAPER = {"without": ">50%", "with": "~10%"}


def run_study(locking: bool, seed: int = 0) -> float:
    config = EngineConfig(locking=locking, probing=locking,
                          scheduler="SRFAE", poll_interval=1.0,
                          scheduler_seed=seed)
    env = Environment()
    engine = AortaEngine(env, config=config, links=dict(LINKS), seed=seed)
    # Real cameras "produce blurred photos occasionally" (Section 4):
    # the residual ~10% failure rate the paper saw *with* locking.
    import random
    engine.add_device(PanTiltZoomCamera(env, "cam1", Point(0, 0),
                                        blur_probability=0.08,
                                        rng=random.Random(seed)))
    engine.add_device(PanTiltZoomCamera(env, "cam2", Point(20, 0),
                                        facing=180.0,
                                        blur_probability=0.08,
                                        rng=random.Random(seed + 1)))
    for i in range(1, N_QUERIES + 1):
        mote = SensorMote(env, f"mote{i}", Point(2.0 * i, 3.0),
                          noise_amplitude=0.0)
        engine.add_device(mote)
        engine.execute(f'''CREATE AQ photo_mote{i} AS
            SELECT photo(c.ip, s.loc, "photos/q{i}")
            FROM sensor s, camera c
            WHERE s.accel_x > 500 AND s.id = "mote{i}"
              AND coverage(c.id, s.loc)''')
        for minute in range(MINUTES):
            mote.inject(SensorStimulus(
                "accel_x", start=60.0 * minute + 1.0 + 0.1 * i,
                duration=3.0, magnitude=900.0))
    engine.start()
    engine.run(until=60.0 * MINUTES + 30.0)

    requests = engine.completed_requests
    assert requests, "study produced no requests"
    failures = 0
    for request in requests:
        if request.state is RequestState.FAILED:
            failures += 1
        elif isinstance(request.result, Photo) and not request.result.ok:
            failures += 1
    return failures / len(requests)


@pytest.fixture(scope="module")
def failure_rates():
    return {
        "without": run_study(locking=False),
        "with": run_study(locking=True),
    }


def test_synchronization_reproduction(failure_rates, benchmark):
    rows = [
        ["without synchronization", f"{failure_rates['without']:.0%}",
         PAPER["without"]],
        ["with synchronization", f"{failure_rates['with']:.0%}",
         PAPER["with"]],
    ]
    table = format_table(["configuration", "failure rate", "paper"], rows)
    record("synchronization",
           f"Section 6.2: action failure rate, {N_QUERIES} photo queries "
           f"on 2 cameras, {MINUTES} virtual minutes", table)

    benchmark.pedantic(lambda: run_study(locking=True, seed=1),
                       rounds=1, iterations=1)


def test_unsynchronized_failure_rate_is_high(failure_rates):
    assert failure_rates["without"] > 0.5


def test_synchronized_failure_rate_is_low(failure_rates):
    assert failure_rates["with"] < 0.20


def test_synchronization_helps_by_large_factor(failure_rates):
    assert failure_rates["without"] > 3 * failure_rates["with"]
