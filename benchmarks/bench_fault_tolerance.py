"""Fault-tolerance benchmark: serviced fraction under random outages.

Drives a continuous photo() workload over a camera field while
:class:`~repro.devices.failures.FailureInjector` injects random outage
episodes (offline periods and crashes), and compares two otherwise
identical engines:

* ``baseline`` — the default policy: one attempt, no failover, no
  health tracking. A request assigned to a mid-outage camera is lost.
* ``fault_tolerant`` — retries with exponential backoff, failover
  re-dispatch minus the failed device, and circuit-breaker quarantine.

Both engines run with probing disabled (the Section 4 ablation): the
optimizer assigns blindly, so device loss hits the execution path and
the recovery layer — not the probe filter — is what's measured. The
outage schedule is identical in both runs (per-device deterministic RNG
substreams keyed by device ID), so the comparison is exact, not
statistical.

Writes a machine-readable ``BENCH_fault_tolerance.json`` at the repo
root. The acceptance gate: the fault-tolerant engine services >= 90% of
submitted requests AND a strictly higher fraction than the baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from _common import format_table, record, write_result  # noqa: E402

from repro.actions.request import ActionRequest  # noqa: E402
from repro.core.config import EngineConfig, RetryPolicy  # noqa: E402
from repro.core.engine import AortaEngine  # noqa: E402
from repro.devices.camera import PanTiltZoomCamera  # noqa: E402
from repro.devices.failures import FailureInjector  # noqa: E402
from repro.devices.health import HealthPolicy  # noqa: E402
from repro.geometry import Point  # noqa: E402
from repro.sim import Environment  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_fault_tolerance.json")

#: Reference outage process: each camera suffers ~`rate * horizon`
#: episodes of ~`mean_duration` seconds, i.e. it is down roughly
#: `rate * mean_duration` = 36% of the time.
N_CAMERAS = 8
OUTAGE_RATE = 0.03          # episodes per second per device
MEAN_DURATION = 12.0        # seconds per episode
FAILURE_SEED = 11
WORKLOAD_SEED = 5
REQUEST_PERIOD = 2.0        # one photo() submission every 2 s

HORIZON = 400.0             # injection window
DRAIN = 120.0               # quiet tail so failovers can complete
SMOKE_HORIZON = 100.0
SMOKE_DRAIN = 60.0

#: Acceptance floor for the fault-tolerant serviced fraction.
TARGET_RATIO = 0.90

FT_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.5,
                       backoff_factor=2.0, backoff_max=10.0,
                       jitter=0.1, failover=True, max_dispatches=4)
FT_HEALTH = HealthPolicy(failure_threshold=3, quarantine_seconds=15.0,
                         backoff_factor=2.0, quarantine_max=120.0)


def make_config(fault_tolerant: bool) -> EngineConfig:
    if not fault_tolerant:
        return EngineConfig(probing=False)
    return EngineConfig(probing=False, retry=FT_RETRY, health=FT_HEALTH,
                        lock_lease_seconds=60.0)


def build_workload(horizon: float) -> list:
    """Deterministic (submit_time, target) schedule, shared by both runs."""
    rng = random.Random(WORKLOAD_SEED)
    schedule = []
    t = REQUEST_PERIOD
    while t < horizon:
        schedule.append((t, Point(rng.uniform(0.0, 100.0),
                                  rng.uniform(0.0, 100.0))))
        t += REQUEST_PERIOD
    return schedule


def run_engine(fault_tolerant: bool, horizon: float, drain: float) -> dict:
    env = Environment()
    engine = AortaEngine(env, config=make_config(fault_tolerant), seed=0)
    cam_rng = random.Random(1)
    cameras = []
    for j in range(N_CAMERAS):
        camera = PanTiltZoomCamera(
            env, f"cam{j + 1}",
            Point(cam_rng.uniform(0.0, 100.0), cam_rng.uniform(0.0, 100.0)),
            facing=cam_rng.uniform(-180.0, 180.0),
            view_half_angle=170.0, view_range=1000.0)
        engine.add_device(camera)
        cameras.append(camera)
    candidates = tuple(camera.device_id for camera in cameras)

    action = engine.actions.get("photo")
    operator = engine.dispatcher.operator_for(action)
    schedule = build_workload(horizon)

    def workload(env):
        for submit_at, target in schedule:
            delay = submit_at - env.now
            if delay > 0:
                yield env.timeout(delay)
            operator.submit(ActionRequest(
                action_name="photo",
                arguments={"target": target, "directory": "photos"},
                created_at=env.now,
                candidates=candidates,
            ))

    env.process(workload(env))
    engine.dispatcher.start()

    injector = FailureInjector(env)
    episodes = injector.random_outages(
        cameras, horizon=horizon, outage_rate_per_device=OUTAGE_RATE,
        mean_duration=MEAN_DURATION, rng=random.Random(FAILURE_SEED))

    env.run(until=horizon + drain)

    submitted = len(schedule)
    stats = engine.statistics()
    serviced = engine.dispatcher.serviced_total
    failed = engine.dispatcher.failed_total
    result = {
        "submitted": submitted,
        "serviced": serviced,
        "failed": failed,
        "unresolved": submitted - serviced - failed,
        "serviced_ratio": serviced / submitted,
        "outage_episodes": episodes,
        "execution_attempts": stats["execution_attempts"],
        "retries": stats["retries"],
        "failovers": stats["failovers"],
        "lock_recoveries": stats["lock_recoveries"],
    }
    if fault_tolerant:
        result.update({
            "devices_quarantined": stats["devices_quarantined"],
            "devices_readmitted": stats["devices_readmitted"],
            "mean_recovery_seconds": stats["mean_recovery_seconds"],
        })
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short horizon for CI")
    args = parser.parse_args(argv)

    horizon = SMOKE_HORIZON if args.smoke else HORIZON
    drain = SMOKE_DRAIN if args.smoke else DRAIN

    baseline = run_engine(False, horizon, drain)
    fault_tolerant = run_engine(True, horizon, drain)

    gates = {
        "serviced_ratio_met":
            fault_tolerant["serviced_ratio"] >= TARGET_RATIO,
        "beats_baseline":
            fault_tolerant["serviced_ratio"] > baseline["serviced_ratio"],
    }

    payload = {
        "benchmark": "bench_fault_tolerance",
        "workload": (f"photo() every {REQUEST_PERIOD}s over {N_CAMERAS} "
                     f"cameras for {horizon}s (+{drain}s drain), probing "
                     f"off; outages: rate {OUTAGE_RATE}/s/device, mean "
                     f"duration {MEAN_DURATION}s, seed {FAILURE_SEED}"),
        "smoke": args.smoke,
        "retry_policy": {
            "max_attempts": FT_RETRY.max_attempts,
            "backoff_base": FT_RETRY.backoff_base,
            "backoff_factor": FT_RETRY.backoff_factor,
            "backoff_max": FT_RETRY.backoff_max,
            "jitter": FT_RETRY.jitter,
            "failover": FT_RETRY.failover,
            "max_dispatches": FT_RETRY.max_dispatches,
        },
        "health_policy": {
            "failure_threshold": FT_HEALTH.failure_threshold,
            "quarantine_seconds": FT_HEALTH.quarantine_seconds,
            "backoff_factor": FT_HEALTH.backoff_factor,
            "quarantine_max": FT_HEALTH.quarantine_max,
        },
        "baseline": baseline,
        "fault_tolerant": fault_tolerant,
        "gate": {
            "target_ratio": TARGET_RATIO,
            "fault_tolerant_ratio": round(
                fault_tolerant["serviced_ratio"], 4),
            "baseline_ratio": round(baseline["serviced_ratio"], 4),
        },
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    rows = [
        ("baseline", baseline["submitted"], baseline["serviced"],
         baseline["failed"], baseline["serviced_ratio"],
         baseline["retries"], baseline["failovers"]),
        ("fault_tolerant", fault_tolerant["submitted"],
         fault_tolerant["serviced"], fault_tolerant["failed"],
         fault_tolerant["serviced_ratio"], fault_tolerant["retries"],
         fault_tolerant["failovers"]),
    ]
    table = format_table(
        ("policy", "submitted", "serviced", "failed", "ratio",
         "retries", "failovers"), rows)
    verdict = (f"gate (fault_tolerant >= {TARGET_RATIO:.0%} and > "
               f"baseline): {'PASS' if exit_code == 0 else 'FAIL'} "
               f"(ft {fault_tolerant['serviced_ratio']:.1%} vs baseline "
               f"{baseline['serviced_ratio']:.1%})")
    record("fault_tolerance",
           "Fault tolerance: serviced fraction under random outages",
           table + "\n\n" + verdict +
           f"\nJSON: {os.path.relpath(JSON_PATH)}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
