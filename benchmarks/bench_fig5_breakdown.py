"""E3 — Figure 5: scheduling vs service time breakdown at n=20.

Paper setup: the Figure 4 uniform workload at 20 requests / 10 cameras;
makespan decomposed into the algorithm's computational cost (scheduling
time) and the time servicing requests on cameras (service time).

Paper findings the shape check asserts:
* scheduling time of every algorithm except SA is negligible relative
  to service time;
* SA's scheduling time is orders of magnitude above the others (paper:
  2.49 s vs <= 0.18 s) even though its *service* time is the best
  (paper: 4.81 s, "happens to be the optimal schedule in this special
  case");
* our proposed algorithms get within ~1 s of SA's service time at a
  negligible scheduling cost.
"""

import pytest

from repro.scheduling import breakdown, uniform_camera_workload

from _common import ALGORITHM_ORDER, format_table, record, scheduler_factories

RUNS = 10
N_REQUESTS = 20
N_DEVICES = 10

#: Paper-reported breakdown at n=20 (Figure 5).
PAPER = {
    "LERFA+SRFE": (0.16, 5.57),
    "SRFAE": (0.18, 5.00),
    "LS": (0.16, 8.05),
    "SA": (2.49, 4.81),
    "RANDOM": (0.16, 14.95),
}


def run_experiment():
    factories = scheduler_factories()
    results = {}
    problems = [uniform_camera_workload(N_REQUESTS, N_DEVICES, seed=seed)
                for seed in range(RUNS)]
    for name in ALGORITHM_ORDER:
        scheduling = service = 0.0
        for seed, problem in enumerate(problems):
            result = breakdown(problem, factories[name](seed).schedule(problem))
            scheduling += result.scheduling_seconds
            service += result.service_seconds
        results[name] = (scheduling / RUNS, service / RUNS)
    return results


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_figure5_reproduction(results, benchmark):
    rows = []
    for name in ALGORITHM_ORDER:
        scheduling, service = results[name]
        paper_scheduling, paper_service = PAPER[name]
        rows.append([name, scheduling, service, scheduling + service,
                     paper_scheduling, paper_service])
    table = format_table(
        ["algorithm", "sched (s)", "service (s)", "total (s)",
         "paper sched", "paper service"], rows)
    record("fig5_breakdown",
           f"Figure 5: time breakdown at n={N_REQUESTS}, m={N_DEVICES} "
           f"(avg of {RUNS} runs)", table)

    problem = uniform_camera_workload(N_REQUESTS, N_DEVICES, seed=0)
    scheduler = scheduler_factories()["LERFA+SRFE"](0)
    benchmark.pedantic(lambda: scheduler.schedule(problem),
                       rounds=3, iterations=1)


def test_sa_scheduling_time_dominates(results):
    sa_scheduling = results["SA"][0]
    for name in ("LERFA+SRFE", "SRFAE", "LS", "RANDOM"):
        assert sa_scheduling > 20 * results[name][0]


def test_greedy_scheduling_time_negligible(results):
    """"Negligible scheduling time is a requirement ... in pervasive
    computing" — below 5% of service time for all but SA."""
    for name in ("LERFA+SRFE", "SRFAE", "LS", "RANDOM"):
        scheduling, service = results[name]
        assert scheduling < 0.05 * service


def test_sa_service_time_is_best_but_total_is_not(results):
    sa_scheduling, sa_service = results["SA"]
    for name in ("LERFA+SRFE", "SRFAE"):
        scheduling, service = results[name]
        # SA finds the best schedules...
        assert sa_service <= service + 0.25
        # ...but pays for them in computation (total within/over ours).
        assert scheduling + service < sa_scheduling + sa_service + 0.5


def test_proposed_near_sa_quality(results):
    """Paper: proposed algorithms within ~1 s of the (near-)optimal
    SA service time."""
    sa_service = results["SA"][1]
    assert results["SRFAE"][1] - sa_service < 1.5
