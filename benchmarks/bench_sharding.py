"""Sharded-coordinator benchmark: band-storm scaling and identity.

Drives one fleet-wide band-storm workload — R regions of wide-range
cameras plus one sensor mote each, every camera covering every mote —
through :class:`~repro.shard.ShardedEngine` at two widths:

* ``shards=1`` — the whole fleet on a single engine. Every band event
  produces a request whose candidate set is *all* cameras, so each
  dispatch pays probe + cost-estimate work proportional to the fleet.
* ``shards=R`` — one region per shard. Each shard's continuous
  executor sees only its own mote and cameras, so the same event costs
  1/R of the candidate work.

The gates, written to ``BENCH_sharding.json``:

* **throughput_scaling** — serviced throughput (requests serviced per
  wall-clock second of ``run()``) at 8 shards is >= 3x the 1-shard
  figure on the 5000-camera storm. Full runs only; in ``--smoke`` the
  ratio is measured and recorded but not gated.
* **workload_conserved** — both widths service exactly one request per
  injected band event: sharding changes the cost, not the answer.
* **single_shard_identity** — a 1-shard fleet's normalized dump of the
  Figure-1 snapshot scenario is byte-identical to the plain
  unsharded engine's (the coordinator's delegation path is inert).
* **deterministic** — two identical sharded storm runs produce
  byte-identical per-shard dumps.
* **parallel_identity** — the parallel fleet's per-shard dumps are
  byte-identical to the serial lockstep run's at the same width.
* **parallel_deterministic** — two identical parallel runs produce
  byte-identical per-shard dumps.
* **parallel_wallclock_speedup** — ``run()`` wall-clock with process
  workers is >= 2x faster than serial lockstep at the same width.
  Only gated on full runs on hosts with >= 4 CPU cores (true
  parallelism needs cores; the ratio is always measured and
  recorded, with per-shard busy/barrier-wait breakdowns).

The parallel section always runs on full runs; ``--smoke`` includes it
only with ``--parallel`` (the CI parallel-smoke leg).

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py \
        [--smoke] [--shards N] [--parallel] [--parallel-backend B]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.dirname(__file__))

from _common import format_table, record, write_result  # noqa: E402

from repro import (  # noqa: E402
    DeviceSpec,
    EngineConfig,
    PanTiltZoomCamera,
    Point,
    RegionPlacement,
    SensorMote,
    SensorStimulus,
    ShardedEngine,
)
from repro.core.config import PARALLEL_BACKENDS  # noqa: E402

from tests.obs.golden import diff_dumps, dump_engine  # noqa: E402
from tests.obs.scenarios import snapshot_scenario  # noqa: E402
from tests.shard.scenarios import sharded_snapshot_scenario  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_sharding.json")

#: The gate configuration: a 5000-camera fleet split eight ways.
FULL_SHARDS = 8
FULL_CAMERAS = 5000
SMOKE_CAMERAS = 192

#: Band events per region. Every event is one stimulus on the region's
#: mote, one query firing, one serviced photo — at both widths.
FULL_EVENTS_PER_REGION = 4
SMOKE_EVENTS_PER_REGION = 2

#: Required serviced-throughput ratio, 8 shards vs 1, full runs.
TARGET_SCALING = 3.0

#: Required run() wall-clock ratio, serial lockstep vs process-worker
#: parallel, at the sharded width on the full storm.
TARGET_PARALLEL_SPEEDUP = 2.0

#: Cores below which the speedup gate is recorded but not enforced:
#: process workers cannot beat serial lockstep without hardware
#: parallelism (identity and determinism are gated regardless).
MIN_SPEEDUP_CORES = 4

#: Storm cadence: events inside a region are EVENT_PERIOD apart;
#: regions are staggered by REGION_STAGGER so the fleet sees a rolling
#: storm rather than R simultaneous detections.
EVENT_PERIOD = 10.0
REGION_STAGGER = 0.25
STIMULUS_SECONDS = 3.0
DRAIN = 15.0

BAND_AQ = '''CREATE AQ band_storm AS
    SELECT photo(c.ip, s.loc, "photos/storm")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''


def build_fleet(shards: int, n_regions: int, cameras_per_region: int,
                *, parallel: bool = False,
                backend: str = "process") -> ShardedEngine:
    """The storm fleet: identical devices regardless of the width.

    Cameras have effectively unbounded range, so in the 1-shard engine
    every camera covers every mote and each request carries the whole
    fleet as candidates; per-region shards carry only their own
    cameras. Region r maps to shard ``r % shards`` — the same region
    layout collapses onto one shard for the baseline. Factories are
    :class:`~repro.DeviceSpec` values, so the identical builder drives
    serial fleets and parallel worker fleets.
    """
    assignments = {}
    for region in range(n_regions):
        for k in range(cameras_per_region):
            assignments[f"cam{region:02d}_{k:04d}"] = region % shards
        assignments[f"mote{region:02d}"] = region % shards
    placement = RegionPlacement(shards, assignments)
    config = EngineConfig(shards=shards, probing=False,
                          parallel=parallel, parallel_backend=backend)
    fleet = ShardedEngine(config=config, placement=placement, seed=0)
    for region in range(n_regions):
        base = 100.0 * region
        for k in range(cameras_per_region):
            fleet.add_device(
                f"cam{region:02d}_{k:04d}",
                DeviceSpec(PanTiltZoomCamera, f"cam{region:02d}_{k:04d}",
                           Point(base + 0.01 * k, 0.0), facing=0.0,
                           view_half_angle=170.0, view_range=1e9))
        fleet.add_device(
            f"mote{region:02d}",
            DeviceSpec(SensorMote, f"mote{region:02d}",
                       Point(base + 5.0, 3.0), noise_amplitude=0.0))
    fleet.execute(BAND_AQ)
    return fleet


def run_storm(shards: int, n_regions: int, cameras_per_region: int,
              events_per_region: int, *, parallel: bool = False,
              backend: str = "process") -> dict:
    """One full storm at the given width; wall-clock covers run()."""
    fleet = build_fleet(shards, n_regions, cameras_per_region,
                        parallel=parallel, backend=backend)
    for region in range(n_regions):
        for event in range(events_per_region):
            fleet.inject(
                f"mote{region:02d}",
                SensorStimulus(
                    "accel_x",
                    start=2.0 + EVENT_PERIOD * event
                    + REGION_STAGGER * region,
                    duration=STIMULUS_SECONDS, magnitude=850.0))
    fleet.start()
    horizon = 2.0 + EVENT_PERIOD * events_per_region + DRAIN
    started = time.perf_counter()
    fleet.run(until=horizon)
    wall_s = time.perf_counter() - started
    stats = fleet.statistics()
    serviced = stats["requests_serviced"]
    result = {
        "shards": shards,
        "parallel": parallel,
        "devices": stats["devices"],
        "serviced": serviced,
        "wall_s": round(wall_s, 4),
        "throughput_per_s": round(serviced / wall_s, 4) if wall_s > 0
        else float("inf"),
        "dumps": [json.dumps(dump, sort_keys=True)
                  for dump in fleet.shard_dumps()],
    }
    if parallel:
        result["backend"] = backend
        result["rounds"] = fleet.round_breakdown()
    fleet.close()
    return result


def check_single_shard_identity() -> dict:
    """Figure-1 snapshot: 1-shard fleet vs the plain engine."""
    plain = snapshot_scenario(observability=True)
    fleet = sharded_snapshot_scenario(observability=True)
    differences = diff_dumps(dump_engine(plain), dump_engine(fleet))
    return {"identical": not differences,
            "differences": differences[:5]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet; scaling measured, not gated")
    parser.add_argument("--shards", type=int, default=FULL_SHARDS,
                        help="sharded width of the storm (default 8)")
    parser.add_argument("--parallel", action="store_true",
                        help="include the parallel-worker section in "
                             "--smoke (full runs always include it)")
    parser.add_argument("--parallel-backend", choices=PARALLEL_BACKENDS,
                        default="process",
                        help="worker backend for the parallel section")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must be >= 2 (the baseline is 1)")

    n_regions = args.shards
    total = SMOKE_CAMERAS if args.smoke else FULL_CAMERAS
    cameras_per_region = max(1, total // n_regions)
    events = SMOKE_EVENTS_PER_REGION if args.smoke \
        else FULL_EVENTS_PER_REGION
    expected = n_regions * events

    print("checking 1-shard delegation identity ...", flush=True)
    identity = check_single_shard_identity()

    label = f"{n_regions * cameras_per_region} cameras, {n_regions} regions"
    print(f"running {label}, shards=1 (baseline) ...", flush=True)
    single = run_storm(1, n_regions, cameras_per_region, events)
    print(f"running {label}, shards={args.shards} (run 1) ...", flush=True)
    sharded = run_storm(args.shards, n_regions, cameras_per_region, events)
    print(f"running {label}, shards={args.shards} (run 2) ...", flush=True)
    repeat = run_storm(args.shards, n_regions, cameras_per_region, events)

    deterministic = sharded["dumps"] == repeat["dumps"]

    parallel_section = None
    if args.parallel or not args.smoke:
        backend = args.parallel_backend
        print(f"running {label}, shards={args.shards} "
              f"({backend} workers, run 1) ...", flush=True)
        par = run_storm(args.shards, n_regions, cameras_per_region,
                        events, parallel=True, backend=backend)
        print(f"running {label}, shards={args.shards} "
              f"({backend} workers, run 2) ...", flush=True)
        par_repeat = run_storm(args.shards, n_regions,
                               cameras_per_region, events,
                               parallel=True, backend=backend)
        cores = os.cpu_count() or 1
        speedup = (sharded["wall_s"] / par["wall_s"]
                   if par["wall_s"] else float("inf"))
        speedup_gated = not args.smoke and cores >= MIN_SPEEDUP_CORES
        parallel_section = {
            "backend": backend,
            "identical_to_serial": par["dumps"] == sharded["dumps"],
            "deterministic": par["dumps"] == par_repeat["dumps"],
            "serial_wall_s": sharded["wall_s"],
            "parallel_wall_s": par["wall_s"],
            "wallclock_speedup": round(speedup, 3),
            "target_speedup": TARGET_PARALLEL_SPEEDUP,
            "cores": cores,
            "speedup_gated": speedup_gated,
            "speedup_gate_skipped_because": None if speedup_gated else (
                "smoke run" if args.smoke else
                f"host has {cores} core(s) < {MIN_SPEEDUP_CORES}; "
                f"process workers cannot beat serial without hardware "
                f"parallelism"),
            "rounds": par["rounds"],
            "run": par,
        }
        par.pop("dumps")
        par.pop("rounds")
        del par_repeat

    for run in (single, sharded, repeat):
        run.pop("dumps")
    scaling = (sharded["throughput_per_s"] / single["throughput_per_s"]
               if single["throughput_per_s"] else float("inf"))

    gates = {
        "workload_conserved": single["serviced"] == expected
        and sharded["serviced"] == expected,
        "single_shard_identity": identity["identical"],
        "deterministic": deterministic,
    }
    if not args.smoke:
        # The scaling gate needs the full-size fleet: at smoke scale
        # fixed simulation overhead drowns the candidate-set savings.
        gates["throughput_scaling"] = scaling >= TARGET_SCALING
    if parallel_section is not None:
        # Identity and determinism hold on any hardware; the wall-clock
        # speedup additionally needs cores and the full-size storm.
        gates["parallel_identity"] = \
            parallel_section["identical_to_serial"]
        gates["parallel_deterministic"] = \
            parallel_section["deterministic"]
        if parallel_section["speedup_gated"]:
            gates["parallel_wallclock_speedup"] = \
                parallel_section["wallclock_speedup"] \
                >= TARGET_PARALLEL_SPEEDUP

    payload = {
        "benchmark": "bench_sharding",
        "smoke": args.smoke,
        "workload": (f"{n_regions * cameras_per_region} wide-range "
                     f"cameras + {n_regions} motes across {n_regions} "
                     f"regions; {events} band events per region every "
                     f"{EVENT_PERIOD}s, staggered {REGION_STAGGER}s per "
                     f"region; probing off"),
        "expected_serviced": expected,
        "single_shard": single,
        "sharded": sharded,
        "scaling": {
            "ratio": round(scaling, 3),
            "target": TARGET_SCALING,
            "gated": not args.smoke,
        },
        "single_shard_identity": identity,
        "deterministic": deterministic,
        "parallel": parallel_section,
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    verdict = "PASS" if exit_code == 0 else "FAIL"
    rows = [
        (f"shards=1", single["devices"], single["serviced"],
         single["wall_s"], single["throughput_per_s"]),
        (f"shards={args.shards}", sharded["devices"],
         sharded["serviced"], sharded["wall_s"],
         sharded["throughput_per_s"]),
    ]
    parallel_lines = ""
    if parallel_section is not None:
        par = parallel_section["run"]
        rows.append((
            f"shards={args.shards}/{parallel_section['backend']}",
            par["devices"], par["serviced"], par["wall_s"],
            par["throughput_per_s"]))
        waits = ", ".join(
            f"s{entry['shard']}={entry['barrier_wait_s']:.2f}s"
            for entry in parallel_section["rounds"]["per_shard"])
        parallel_lines = (
            f"parallel identical to serial: "
            f"{parallel_section['identical_to_serial']}; deterministic: "
            f"{parallel_section['deterministic']}\n"
            f"parallel wall-clock speedup: "
            f"{parallel_section['wallclock_speedup']:.2f}x (target "
            f"{TARGET_PARALLEL_SPEEDUP:.0f}x"
            + (")" if parallel_section["speedup_gated"] else
               f", not gated: "
               f"{parallel_section['speedup_gate_skipped_because']})")
            + f"\nbarrier waits over "
              f"{parallel_section['rounds']['rounds']} rounds: {waits}\n")
    table = format_table(
        ("width", "devices", "serviced", "wall s", "req/s"), rows)
    body = (
        f"{table}\n"
        f"scaling: {scaling:.2f}x (target {TARGET_SCALING:.0f}x"
        f"{', not gated in smoke' if args.smoke else ''})\n"
        f"1-shard delegation identical to plain engine: "
        f"{identity['identical']}\n"
        f"deterministic repeat: {deterministic}\n"
        f"{parallel_lines}"
        f"verdict: {verdict}\n"
        f"JSON: {os.path.relpath(JSON_PATH)}")
    record("sharding", "Sharded coordinator: band-storm scaling", body)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
