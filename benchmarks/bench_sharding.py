"""Sharded-coordinator benchmark: band-storm scaling and identity.

Drives one fleet-wide band-storm workload — R regions of wide-range
cameras plus one sensor mote each, every camera covering every mote —
through :class:`~repro.shard.ShardedEngine` at two widths:

* ``shards=1`` — the whole fleet on a single engine. Every band event
  produces a request whose candidate set is *all* cameras, so each
  dispatch pays probe + cost-estimate work proportional to the fleet.
* ``shards=R`` — one region per shard. Each shard's continuous
  executor sees only its own mote and cameras, so the same event costs
  1/R of the candidate work.

Three gates, written to ``BENCH_sharding.json``:

* **throughput_scaling** — serviced throughput (requests serviced per
  wall-clock second of ``run()``) at 8 shards is >= 3x the 1-shard
  figure on the 5000-camera storm. Full runs only; in ``--smoke`` the
  ratio is measured and recorded but not gated.
* **workload_conserved** — both widths service exactly one request per
  injected band event: sharding changes the cost, not the answer.
* **single_shard_identity** — a 1-shard fleet's normalized dump of the
  Figure-1 snapshot scenario is byte-identical to the plain
  unsharded engine's (the coordinator's delegation path is inert).
* **deterministic** — two identical sharded storm runs produce
  byte-identical per-shard dumps.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py \
        [--smoke] [--shards N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.dirname(__file__))

from _common import format_table, record, write_result  # noqa: E402

from repro import (  # noqa: E402
    EngineConfig,
    PanTiltZoomCamera,
    Point,
    RegionPlacement,
    SensorMote,
    SensorStimulus,
    ShardedEngine,
)

from tests.obs.golden import diff_dumps, dump_engine  # noqa: E402
from tests.obs.scenarios import snapshot_scenario  # noqa: E402
from tests.shard.scenarios import sharded_snapshot_scenario  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_sharding.json")

#: The gate configuration: a 5000-camera fleet split eight ways.
FULL_SHARDS = 8
FULL_CAMERAS = 5000
SMOKE_CAMERAS = 192

#: Band events per region. Every event is one stimulus on the region's
#: mote, one query firing, one serviced photo — at both widths.
FULL_EVENTS_PER_REGION = 4
SMOKE_EVENTS_PER_REGION = 2

#: Required serviced-throughput ratio, 8 shards vs 1, full runs.
TARGET_SCALING = 3.0

#: Storm cadence: events inside a region are EVENT_PERIOD apart;
#: regions are staggered by REGION_STAGGER so the fleet sees a rolling
#: storm rather than R simultaneous detections.
EVENT_PERIOD = 10.0
REGION_STAGGER = 0.25
STIMULUS_SECONDS = 3.0
DRAIN = 15.0

BAND_AQ = '''CREATE AQ band_storm AS
    SELECT photo(c.ip, s.loc, "photos/storm")
    FROM sensor s, camera c
    WHERE s.accel_x > 500 AND coverage(c.id, s.loc)'''


def build_fleet(shards: int, n_regions: int,
                cameras_per_region: int) -> ShardedEngine:
    """The storm fleet: identical devices regardless of the width.

    Cameras have effectively unbounded range, so in the 1-shard engine
    every camera covers every mote and each request carries the whole
    fleet as candidates; per-region shards carry only their own
    cameras. Region r maps to shard ``r % shards`` — the same region
    layout collapses onto one shard for the baseline.
    """
    assignments = {}
    for region in range(n_regions):
        for k in range(cameras_per_region):
            assignments[f"cam{region:02d}_{k:04d}"] = region % shards
        assignments[f"mote{region:02d}"] = region % shards
    placement = RegionPlacement(shards, assignments)
    config = EngineConfig(shards=shards, probing=False)
    fleet = ShardedEngine(config=config, placement=placement, seed=0)
    for region in range(n_regions):
        base = 100.0 * region
        for k in range(cameras_per_region):
            fleet.add_device(
                f"cam{region:02d}_{k:04d}",
                lambda env, region=region, k=k, base=base:
                PanTiltZoomCamera(
                    env, f"cam{region:02d}_{k:04d}",
                    Point(base + 0.01 * k, 0.0), facing=0.0,
                    view_half_angle=170.0, view_range=1e9))
        fleet.add_device(
            f"mote{region:02d}",
            lambda env, region=region, base=base: SensorMote(
                env, f"mote{region:02d}", Point(base + 5.0, 3.0),
                noise_amplitude=0.0))
    fleet.execute(BAND_AQ)
    return fleet


def run_storm(shards: int, n_regions: int, cameras_per_region: int,
              events_per_region: int) -> dict:
    """One full storm at the given width; wall-clock covers run()."""
    fleet = build_fleet(shards, n_regions, cameras_per_region)
    for region in range(n_regions):
        for event in range(events_per_region):
            fleet.inject(
                f"mote{region:02d}",
                SensorStimulus(
                    "accel_x",
                    start=2.0 + EVENT_PERIOD * event
                    + REGION_STAGGER * region,
                    duration=STIMULUS_SECONDS, magnitude=850.0))
    fleet.start()
    horizon = 2.0 + EVENT_PERIOD * events_per_region + DRAIN
    started = time.perf_counter()
    fleet.run(until=horizon)
    wall_s = time.perf_counter() - started
    stats = fleet.statistics()
    serviced = stats["requests_serviced"]
    return {
        "shards": shards,
        "devices": stats["devices"],
        "serviced": serviced,
        "wall_s": round(wall_s, 4),
        "throughput_per_s": round(serviced / wall_s, 4) if wall_s > 0
        else float("inf"),
        "dumps": [json.dumps(dump_engine(shard), sort_keys=True)
                  for shard in fleet.shards],
    }


def check_single_shard_identity() -> dict:
    """Figure-1 snapshot: 1-shard fleet vs the plain engine."""
    plain = snapshot_scenario(observability=True)
    fleet = sharded_snapshot_scenario(observability=True)
    differences = diff_dumps(dump_engine(plain), dump_engine(fleet))
    return {"identical": not differences,
            "differences": differences[:5]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fleet; scaling measured, not gated")
    parser.add_argument("--shards", type=int, default=FULL_SHARDS,
                        help="sharded width of the storm (default 8)")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must be >= 2 (the baseline is 1)")

    n_regions = args.shards
    total = SMOKE_CAMERAS if args.smoke else FULL_CAMERAS
    cameras_per_region = max(1, total // n_regions)
    events = SMOKE_EVENTS_PER_REGION if args.smoke \
        else FULL_EVENTS_PER_REGION
    expected = n_regions * events

    print("checking 1-shard delegation identity ...", flush=True)
    identity = check_single_shard_identity()

    label = f"{n_regions * cameras_per_region} cameras, {n_regions} regions"
    print(f"running {label}, shards=1 (baseline) ...", flush=True)
    single = run_storm(1, n_regions, cameras_per_region, events)
    print(f"running {label}, shards={args.shards} (run 1) ...", flush=True)
    sharded = run_storm(args.shards, n_regions, cameras_per_region, events)
    print(f"running {label}, shards={args.shards} (run 2) ...", flush=True)
    repeat = run_storm(args.shards, n_regions, cameras_per_region, events)

    deterministic = sharded["dumps"] == repeat["dumps"]
    for run in (single, sharded, repeat):
        run.pop("dumps")
    scaling = (sharded["throughput_per_s"] / single["throughput_per_s"]
               if single["throughput_per_s"] else float("inf"))

    gates = {
        "workload_conserved": single["serviced"] == expected
        and sharded["serviced"] == expected,
        "single_shard_identity": identity["identical"],
        "deterministic": deterministic,
    }
    if not args.smoke:
        # The scaling gate needs the full-size fleet: at smoke scale
        # fixed simulation overhead drowns the candidate-set savings.
        gates["throughput_scaling"] = scaling >= TARGET_SCALING

    payload = {
        "benchmark": "bench_sharding",
        "smoke": args.smoke,
        "workload": (f"{n_regions * cameras_per_region} wide-range "
                     f"cameras + {n_regions} motes across {n_regions} "
                     f"regions; {events} band events per region every "
                     f"{EVENT_PERIOD}s, staggered {REGION_STAGGER}s per "
                     f"region; probing off"),
        "expected_serviced": expected,
        "single_shard": single,
        "sharded": sharded,
        "scaling": {
            "ratio": round(scaling, 3),
            "target": TARGET_SCALING,
            "gated": not args.smoke,
        },
        "single_shard_identity": identity,
        "deterministic": deterministic,
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    verdict = "PASS" if exit_code == 0 else "FAIL"
    table = format_table(
        ("width", "devices", "serviced", "wall s", "req/s"),
        [(f"shards=1", single["devices"], single["serviced"],
          single["wall_s"], single["throughput_per_s"]),
         (f"shards={args.shards}", sharded["devices"],
          sharded["serviced"], sharded["wall_s"],
          sharded["throughput_per_s"])])
    body = (
        f"{table}\n"
        f"scaling: {scaling:.2f}x (target {TARGET_SCALING:.0f}x"
        f"{', not gated in smoke' if args.smoke else ''})\n"
        f"1-shard delegation identical to plain engine: "
        f"{identity['identical']}\n"
        f"deterministic repeat: {deterministic}\n"
        f"verdict: {verdict}\n"
        f"JSON: {os.path.relpath(JSON_PATH)}")
    record("sharding", "Sharded coordinator: band-storm scaling", body)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
