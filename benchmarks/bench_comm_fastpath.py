"""Comm fast-path benchmark: probe/connect traffic and batch latency.

Drives a continuous multi-query workload — 50 registered AQs over a
54-device fleet (40 PTZ cameras, 8 sensor motes, 6 phones) — and
compares two otherwise identical engines:

* ``fastpath_off`` — the pre-fastpath engine: every batch pays a full
  probe exchange per candidate and every exchange pays the connection
  handshake.
* ``fastpath_on`` — keep-alive connection pool + TTL device-status
  cache + concurrent multi-action dispatch.

The queries are band predicates over ``accel_x`` (40 photo bands, 10
sendphoto bands), so each stimulus fires exactly one query. That makes
the workload adversarial-but-fair for the cache: every batch still
probes/costs the full 40-camera candidate set, while execution touches
(and therefore invalidates) only the one device that serviced it.

Writes a machine-readable ``BENCH_comm_fastpath.json`` at the repo
root. The acceptance gate: with the fast path on, probe exchanges AND
connect handshakes both drop by >= 2x, mean batch makespan improves,
the serviced set is unchanged, and a repeat run is bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_comm_fastpath.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from _common import format_table, record, write_result  # noqa: E402

from repro.actions.builtins import (  # noqa: E402
    sendphoto_profile,
    sendphoto_resolver,
)
from repro.core.config import EngineConfig  # noqa: E402
from repro.core.engine import AortaEngine  # noqa: E402
from repro.devices.camera import PanTiltZoomCamera  # noqa: E402
from repro.devices.phone import MobilePhone  # noqa: E402
from repro.devices.sensor import SensorMote, SensorStimulus  # noqa: E402
from repro.geometry import Point  # noqa: E402
from repro.sim import Environment  # noqa: E402

JSON_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_comm_fastpath.json")

#: Fleet shape: >= 40 devices per the experiment design.
N_CAMERAS = 40
N_MOTES = 8
N_PHONES = 6

#: Query mix: 40 photo bands + 10 sendphoto bands = 50 continuous AQs.
N_PHOTO_QUERIES = 40
N_SENDPHOTO_QUERIES = 10

#: Stimulus cadence: one band-targeted event every EVENT_PERIOD
#: seconds, held for STIMULUS_SECONDS. Polls cycle every few virtual
#: seconds here (phone scans ride the 300 ms carrier link), so the
#: stimulus must outlast the slowest poll cycle in either config —
#: otherwise the two runs drop *different* events and the serviced-set
#: comparison is apples to oranges.
EVENT_PERIOD = 12.0
STIMULUS_SECONDS = 10.0
FULL_EVENTS = 50
SMOKE_EVENTS = 12
DRAIN = 40.0

#: Cache TTLs sized to the workload: batches arrive every ~5 s, so the
#: camera status survives between batches; phone/sensor defaults apply.
STATUS_TTLS = {"camera": 30.0, "sensor": 3.0, "phone": 15.0}

#: Acceptance thresholds.
TARGET_PROBE_RATIO = 2.0
TARGET_CONNECT_RATIO = 2.0


def photo_band(k: int) -> tuple[float, float]:
    """Photo query k fires on accel_x in (500+10k, 510+10k]."""
    return 500.0 + 10.0 * k, 510.0 + 10.0 * k


def sendphoto_band(j: int) -> tuple[float, float]:
    """Sendphoto query j fires on accel_x in (900+10j, 910+10j]."""
    return 900.0 + 10.0 * j, 910.0 + 10.0 * j


def install_sendphoto(engine: AortaEngine) -> None:
    def impl(device, args):
        yield from device.execute("connect")
        outcome = yield from device.execute(
            "receive_mms", sender="aorta", body="photo",
            attachment=args["photo_pathname"], size_kb=50.0)
        return outcome.detail

    engine.install_action_code("lib/users/sendphoto.dll", impl)
    engine.install_action_profile(
        "profiles/users/sendphoto.xml", sendphoto_profile(),
        sendphoto_resolver, device_parameters={"phone_no": "number"})
    engine.execute('''CREATE ACTION sendphoto(String phone_no,
                                              String photo_pathname)
        AS "lib/users/sendphoto.dll"
        PROFILE "profiles/users/sendphoto.xml"''')


def build_engine(fastpath: bool) -> AortaEngine:
    config = EngineConfig(
        connection_pool=fastpath,
        pool_capacity=64,
        status_cache=fastpath,
        status_ttls=STATUS_TTLS if fastpath else None,
        concurrent_dispatch=fastpath,
    )
    env = Environment()
    engine = AortaEngine(env, config=config, seed=0)
    # Cameras on a wide arc, all covering the mote field.
    for k in range(N_CAMERAS):
        engine.add_device(PanTiltZoomCamera(
            env, f"cam{k + 1:02d}", Point(2.5 * k, 0.0),
            facing=0.0, view_half_angle=170.0, view_range=1000.0,
            ip_address=f"10.0.0.{k + 1}"))
    for m in range(N_MOTES):
        engine.add_device(SensorMote(
            env, f"mote{m + 1}", Point(10.0 + 10.0 * m, 20.0),
            noise_amplitude=0.0))
    for p in range(N_PHONES):
        engine.add_device(MobilePhone(
            env, f"phone{p + 1}", Point(5.0 * p, 40.0),
            number=f"+8529000{p:04d}"))

    install_sendphoto(engine)
    for k in range(N_PHOTO_QUERIES):
        low, high = photo_band(k)
        engine.execute(f'''CREATE AQ photo_band{k:02d} AS
            SELECT photo(c.ip, s.loc, "photos/band{k:02d}")
            FROM sensor s, camera c
            WHERE s.accel_x > {low} AND s.accel_x <= {high}
              AND coverage(c.id, s.loc)''')
    for j in range(N_SENDPHOTO_QUERIES):
        low, high = sendphoto_band(j)
        engine.execute(f'''CREATE AQ notify_band{j:02d} AS
            SELECT sendphoto(p.number, "photos/alert{j:02d}.jpg")
            FROM sensor s, phone p
            WHERE s.accel_x > {low} AND s.accel_x <= {high}''')
    return engine


def inject_stimuli(engine: AortaEngine, n_events: int) -> None:
    """One band-targeted spike every EVENT_PERIOD seconds.

    Event i hits mote ``i % N_MOTES`` with a magnitude centered in band
    ``i % 50`` — bands 0..39 fire one photo query, 40..49 one sendphoto
    query (which fans out to every phone). Deterministic by
    construction: no RNG involved.
    """
    for i in range(n_events):
        band = i % (N_PHOTO_QUERIES + N_SENDPHOTO_QUERIES)
        if band < N_PHOTO_QUERIES:
            low, high = photo_band(band)
        else:
            low, high = sendphoto_band(band - N_PHOTO_QUERIES)
        magnitude = (low + high) / 2.0
        mote = engine.comm.registry.get(f"mote{i % N_MOTES + 1}")
        mote.inject(SensorStimulus("accel_x", start=4.0 + EVENT_PERIOD * i,
                                   duration=STIMULUS_SECONDS,
                                   magnitude=magnitude))


def run_engine(fastpath: bool, n_events: int) -> dict:
    engine = build_engine(fastpath)
    inject_stimuli(engine, n_events)
    engine.start()
    engine.run(until=4.0 + EVENT_PERIOD * n_events + DRAIN)

    stats = engine.statistics()
    reports = engine.dispatcher.reports
    makespans = [r.makespan_seconds for r in reports]
    # Auto request ids come from a process-global counter and exact
    # submission timestamps shift when the fast path shortens scan
    # polls, so identify a request by the band event that produced it:
    # event i fires at 4 + EVENT_PERIOD*i, the detecting poll lands
    # well inside the period, and one band event fires exactly one
    # query. (Candidate sets are not compared — dispatch narrows them
    # to the probe-available subset, which legitimately varies with
    # lossy-link RNG draws.)
    serviced_ids = sorted(
        (int((r.created_at - 4.0) // EVENT_PERIOD), r.action_name)
        for r in engine.completed_requests
        if r.state.value == "serviced")
    result = {
        "batches": len(reports),
        "serviced": stats["requests_serviced"],
        "failed": stats["requests_failed"],
        "probes_sent": stats["probes_sent"],
        "connects_attempted": engine.comm.transport.connects_attempted,
        "mean_makespan_seconds": (sum(makespans) / len(makespans)
                                  if makespans else 0.0),
        "max_makespan_seconds": max(makespans, default=0.0),
        "virtual_time": stats["virtual_time"],
        "serviced_ids": serviced_ids,
    }
    if fastpath:
        result["pool"] = engine.pool.stats()
        result["status_cache"] = engine.status_cache.stats()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short horizon for CI")
    args = parser.parse_args(argv)
    n_events = SMOKE_EVENTS if args.smoke else FULL_EVENTS

    off = run_engine(False, n_events)
    on = run_engine(True, n_events)
    repeat = run_engine(True, n_events)

    probe_ratio = (off["probes_sent"] / on["probes_sent"]
                   if on["probes_sent"] else float("inf"))
    connect_ratio = (off["connects_attempted"] / on["connects_attempted"]
                     if on["connects_attempted"] else float("inf"))
    deterministic = on == repeat
    serviced_unchanged = off["serviced_ids"] == on["serviced_ids"]
    latency_improved = (on["mean_makespan_seconds"]
                        < off["mean_makespan_seconds"])
    gates = {
        "probe_amortized": probe_ratio >= TARGET_PROBE_RATIO,
        "connect_amortized": connect_ratio >= TARGET_CONNECT_RATIO,
        "latency_improved": latency_improved,
        "deterministic": deterministic,
        "serviced_unchanged": serviced_unchanged,
    }

    # The id lists exist to compare runs; keep the JSON readable.
    for run in (off, on, repeat):
        run.pop("serviced_ids")
    payload = {
        "benchmark": "bench_comm_fastpath",
        "workload": (f"{N_PHOTO_QUERIES} photo-band + "
                     f"{N_SENDPHOTO_QUERIES} sendphoto-band AQs over "
                     f"{N_CAMERAS} cameras, {N_MOTES} motes, "
                     f"{N_PHONES} phones; one band event every "
                     f"{EVENT_PERIOD}s x {n_events} events"),
        "smoke": args.smoke,
        "status_ttls": STATUS_TTLS,
        "fastpath_off": off,
        "fastpath_on": on,
        "gate": {
            "target_probe_ratio": TARGET_PROBE_RATIO,
            "target_connect_ratio": TARGET_CONNECT_RATIO,
            "probe_ratio": round(probe_ratio, 3),
            "connect_ratio": round(connect_ratio, 3),
            "mean_makespan_off": round(off["mean_makespan_seconds"], 6),
            "mean_makespan_on": round(on["mean_makespan_seconds"], 6),
        },
    }
    exit_code = write_result(JSON_PATH, payload, gates)

    rows = [
        ("fastpath_off", off["batches"], off["serviced"],
         off["probes_sent"], off["connects_attempted"],
         off["mean_makespan_seconds"]),
        ("fastpath_on", on["batches"], on["serviced"],
         on["probes_sent"], on["connects_attempted"],
         on["mean_makespan_seconds"]),
    ]
    table = format_table(
        ("config", "batches", "serviced", "probes", "connects",
         "mean_makespan_s"), rows)
    verdict = (
        f"gate (probes >= {TARGET_PROBE_RATIO:.0f}x, connects >= "
        f"{TARGET_CONNECT_RATIO:.0f}x, latency down, deterministic, "
        f"serviced unchanged): {'PASS' if exit_code == 0 else 'FAIL'} "
        f"(probes {probe_ratio:.1f}x, connects {connect_ratio:.1f}x, "
        f"makespan {off['mean_makespan_seconds']:.3f}s -> "
        f"{on['mean_makespan_seconds']:.3f}s)")
    record("comm_fastpath",
           "Comm fast path: probe/connect amortization and batch latency",
           table + "\n\n" + verdict +
           f"\nJSON: {os.path.relpath(JSON_PATH)}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
