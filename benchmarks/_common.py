"""Shared helpers for the experiment benchmarks.

Every ``bench_*`` module reproduces one artifact of the paper's
evaluation (see DESIGN.md's experiment index) and reports its measured
table next to the paper's reported numbers. Results are printed and
persisted under ``bench_results/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")

#: The five algorithms in the paper's presentation order.
ALGORITHM_ORDER = ("LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM")


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append([
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [max(len(line[i]) for line in materialized)
              for i in range(len(headers))]
    lines = []
    for index, line in enumerate(materialized):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def record(name: str, title: str, body: str) -> str:
    """Print a result block and persist it under bench_results/."""
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    return text


def write_result(json_path: str, payload: Mapping[str, object],
                 gates: Mapping[str, object]) -> int:
    """Finalize one benchmark's JSON artifact with boolean gating.

    The single exit door for every gated bench: each gate value is
    coerced to a real ``bool`` (a truthy string or count can never
    masquerade as a passing gate in the artifact), ``gates`` and the
    derived top-level ``pass`` are stamped onto the payload, the JSON
    is written with stable formatting (indent 2, trailing newline), and
    the return value is the process exit code — 0 on pass, 1 on any
    gate miss — so ``raise SystemExit(main())`` fails CI on a miss.
    """
    coerced: Dict[str, bool] = {name: bool(value)
                                for name, value in gates.items()}
    gate_pass = all(coerced.values())
    finalized = dict(payload)
    finalized["gates"] = coerced
    finalized["pass"] = gate_pass
    with open(json_path, "w") as handle:
        json.dump(finalized, handle, indent=2)
        handle.write("\n")
    return 0 if gate_pass else 1


def scheduler_factories(sa_parameters=None):
    """Fresh factories of the five evaluated algorithms."""
    from repro.scheduling import (
        LerfaSrfeScheduler,
        ListScheduler,
        RandomScheduler,
        SimulatedAnnealingScheduler,
        SrfaeScheduler,
    )
    return {
        "LERFA+SRFE": lambda seed: LerfaSrfeScheduler(seed),
        "SRFAE": lambda seed: SrfaeScheduler(seed),
        "LS": lambda seed: ListScheduler(seed),
        "SA": lambda seed: SimulatedAnnealingScheduler(
            seed, parameters=sa_parameters),
        "RANDOM": lambda seed: RandomScheduler(seed),
    }
