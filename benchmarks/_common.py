"""Shared helpers for the experiment benchmarks.

Every ``bench_*`` module reproduces one artifact of the paper's
evaluation (see DESIGN.md's experiment index) and reports its measured
table next to the paper's reported numbers. Results are printed and
persisted under ``bench_results/``.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")

#: The five algorithms in the paper's presentation order.
ALGORITHM_ORDER = ("LERFA+SRFE", "SRFAE", "LS", "SA", "RANDOM")


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append([
            f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [max(len(line[i]) for line in materialized)
              for i in range(len(headers))]
    lines = []
    for index, line in enumerate(materialized):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def record(name: str, title: str, body: str) -> str:
    """Print a result block and persist it under bench_results/."""
    text = f"== {title} ==\n{body}\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    return text


def scheduler_factories(sa_parameters=None):
    """Fresh factories of the five evaluated algorithms."""
    from repro.scheduling import (
        LerfaSrfeScheduler,
        ListScheduler,
        RandomScheduler,
        SimulatedAnnealingScheduler,
        SrfaeScheduler,
    )
    return {
        "LERFA+SRFE": lambda seed: LerfaSrfeScheduler(seed),
        "SRFAE": lambda seed: SrfaeScheduler(seed),
        "LS": lambda seed: ListScheduler(seed),
        "SA": lambda seed: SimulatedAnnealingScheduler(
            seed, parameters=sa_parameters),
        "RANDOM": lambda seed: RandomScheduler(seed),
    }
