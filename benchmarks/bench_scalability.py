"""E10 (extension) — scaling toward "a large number of devices".

The paper's future work targets "scheduling techniques for a large
number of heterogeneous devices"; its evaluation stops at 30 requests
on 10 cameras. This bench pushes the greedy algorithms an order of
magnitude further and checks that the paper's two requirements keep
holding: (a) scheduling time stays real-time (Section 5.1), and (b) the
proposed algorithms' makespan advantage over LS persists.

SA is excluded: its scheduling time is already the bottleneck at n=20
(Figure 5), which is precisely why the paper proposed the greedy
algorithms.
"""

import pytest

from repro.scheduling import breakdown, uniform_camera_workload

from _common import format_table, record, scheduler_factories

RUNS = 5
#: (n requests, m devices) at a fixed ratio of 4 requests per device.
SIZES = ((20, 5), (80, 20), (200, 50), (400, 100))
ALGORITHMS = ("LERFA+SRFE", "SRFAE", "LS")


def run_experiment():
    factories = scheduler_factories()
    results = {}
    for n, m in SIZES:
        for name in ALGORITHMS:
            scheduling = service = 0.0
            for seed in range(RUNS):
                problem = uniform_camera_workload(n, m, seed=seed)
                result = breakdown(problem,
                                   factories[name](seed).schedule(problem))
                scheduling += result.scheduling_seconds
                service += result.service_seconds
            results[(name, n, m)] = (scheduling / RUNS, service / RUNS)
    return results


@pytest.fixture(scope="module")
def results():
    return run_experiment()


def test_scalability_reproduction(results, benchmark):
    rows = []
    for name in ALGORITHMS:
        for n, m in SIZES:
            scheduling, service = results[(name, n, m)]
            rows.append([name, f"({n},{m})", f"{scheduling:.4f}",
                         service])
    table = format_table(
        ["algorithm", "(n,m)", "sched (s)", "service (s)"], rows)
    record("scalability",
           f"E10: scaling at 4 requests/device (avg of {RUNS} runs)",
           table)
    problem = uniform_camera_workload(200, 50, seed=0)
    factory = scheduler_factories()["LERFA+SRFE"]
    benchmark.pedantic(lambda: factory(0).schedule(problem),
                       rounds=3, iterations=1)


def test_scheduling_stays_real_time(results):
    """Even at 400 requests on 100 devices, scheduling is sub-5s —
    the Section 5.1 real-time requirement at 13x the paper's scale."""
    for name in ALGORITHMS:
        scheduling, _ = results[(name, 400, 100)]
        assert scheduling < 5.0, f"{name}: {scheduling:.2f}s"


def test_proposed_advantage_persists_at_scale(results):
    for n, m in SIZES:
        ls_service = results[("LS", n, m)][1]
        assert results[("SRFAE", n, m)][1] < ls_service
        assert results[("LERFA+SRFE", n, m)][1] < ls_service


def test_service_roughly_flat_at_fixed_ratio(results):
    """Fixed n/m keeps the uniform-workload makespan roughly constant
    (E5's law, extrapolated to 10x the scale)."""
    for name in ALGORITHMS:
        services = [results[(name, n, m)][1] for n, m in SIZES]
        assert max(services) < 2.0 * min(services)
